//! The end-to-end technology-dependent synthesis pipeline (paper Fig. 2,
//! back-end).
//!
//! ```text
//! input circuit (technology-independent)
//!   -> placement onto device qubits          (identity, as in the paper,
//!                                             or greedy — future-work ext.)
//!   -> generalized-Toffoli decomposition     (Barenco)
//!   -> Toffoli/CZ/SWAP -> Clifford+T + CNOT  (Nielsen & Chuang)
//!   -> CNOT legalization                     (Fig. 6 reversal, CTR reroute)
//!   -> local optimization                    (until the cost function
//!                                             stops improving)
//!   -> QMDD formal verification              (output == specification)
//! ```

use crate::budget::{BudgetResource, CompileBudget, VerifyMode};
use crate::cache::CacheMode;
use crate::decompose::{decompose_circuit_memo, decompose_circuit_with, DecomposeStrategy};
use crate::error::CompileError;
use crate::optimize::{optimize_bounded, OptimizeConfig, OptimizeCounters};
use crate::place::{place, Placement, PlacementStrategy};
use crate::remap::{route_circuit_persistent_traced, SwapStrategy};
use crate::route::{route_bounded_uncached, route_bounded_via, RoutingObjective};
use crate::strategy::{RouteRequest, RouteStrategyKind};
use qsyn_arch::{CostModel, Device, TransmonCost};
use qsyn_circuit::{Circuit, CircuitStats};
use qsyn_qmdd::{
    miter_support, try_equivalent, try_equivalent_miter, try_equivalent_miter_batched,
    try_equivalent_miter_on_batched, EquivBudget, EquivBudgetError, DEFAULT_MITER_BATCH,
};
use qsyn_trace::{CompileMetrics, Pass, PassEvent, Span, StageSnapshot, TraceSink, Verdict};
use std::sync::{Arc, Condvar, Mutex};

/// Which formal equivalence check to run on the compiled output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verification {
    /// Skip verification (for benchmarking the synthesis stages alone).
    None,
    /// Build both QMDDs and compare canonical root edges (the paper's
    /// method).
    Canonical,
    /// Interleaved miter `U_out * U_spec^dagger = I`; scales to very wide
    /// registers.
    Miter,
    /// Canonical up to 16 device qubits, miter beyond.
    #[default]
    Auto,
}

/// Whether (and how) the local optimization stage runs.
///
/// Converts from the values callers already have: `bool` (on/off with the
/// default families), an [`OptimizeConfig`] (ablation experiments), or an
/// `Option<OptimizeConfig>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimization {
    /// Skip the optimization stage entirely.
    Disabled,
    /// Run the configured optimization families until cost stops improving.
    Enabled(OptimizeConfig),
}

impl Optimization {
    fn default_enabled() -> Self {
        Optimization::Enabled(OptimizeConfig::default())
    }

    fn config(self) -> Option<OptimizeConfig> {
        match self {
            Optimization::Disabled => None,
            Optimization::Enabled(cfg) => Some(cfg),
        }
    }
}

impl Default for Optimization {
    fn default() -> Self {
        Optimization::default_enabled()
    }
}

impl From<bool> for Optimization {
    fn from(on: bool) -> Self {
        if on {
            Optimization::default_enabled()
        } else {
            Optimization::Disabled
        }
    }
}

impl From<OptimizeConfig> for Optimization {
    fn from(cfg: OptimizeConfig) -> Self {
        Optimization::Enabled(cfg)
    }
}

impl From<Option<OptimizeConfig>> for Optimization {
    fn from(cfg: Option<OptimizeConfig>) -> Self {
        cfg.map_or(Optimization::Disabled, Optimization::Enabled)
    }
}

/// The technology-dependent quantum logic synthesis tool.
///
/// # Examples
///
/// ```
/// use qsyn_arch::devices;
/// use qsyn_circuit::Circuit;
/// use qsyn_core::Compiler;
/// use qsyn_gate::Gate;
///
/// let mut spec = Circuit::new(3);
/// spec.push(Gate::toffoli(0, 1, 2));
///
/// let compiler = Compiler::new(devices::ibmqx2());
/// let result = compiler.compile(&spec)?;
/// assert!(result.optimized.is_technology_ready());
/// assert_eq!(result.verified, Some(true));
/// # Ok::<(), qsyn_core::CompileError>(())
/// ```
pub struct Compiler {
    device: Device,
    cost: Box<dyn CostModel>,
    placement: PlacementStrategy,
    routing: RoutingObjective,
    strategy: RouteStrategyKind,
    swaps: SwapStrategy,
    decompose: DecomposeStrategy,
    verification: Verification,
    optimization: Optimization,
    budget: CompileBudget,
    cache: CacheMode,
    disk: Option<Arc<crate::persist::DiskCache>>,
    trace: Option<Arc<dyn TraceSink>>,
    job: Option<u64>,
    stream_verify: StreamVerifyConfig,
    #[cfg(feature = "fault-injection")]
    inject: Option<crate::budget::FaultSpec>,
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiler")
            .field("device", &self.device.name())
            .field("cost", &self.cost.name())
            .field("placement", &self.placement)
            .field("strategy", &self.strategy)
            .field("verification", &self.verification)
            .field("optimize", &self.optimization)
            .field("cache", &self.cache)
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

impl Compiler {
    /// Creates a compiler for a device with the paper's defaults: Eqn. 2
    /// cost model, identity placement, optimization on, automatic
    /// verification.
    pub fn new(device: Device) -> Self {
        Compiler {
            device,
            cost: Box::new(TransmonCost::default()),
            placement: PlacementStrategy::Identity,
            routing: RoutingObjective::FewestSwaps,
            strategy: RouteStrategyKind::Ctr,
            swaps: SwapStrategy::ReturnControl,
            decompose: DecomposeStrategy::Exact,
            verification: Verification::Auto,
            optimization: Optimization::default_enabled(),
            budget: CompileBudget::default(),
            cache: CacheMode::default(),
            disk: None,
            trace: None,
            job: None,
            stream_verify: StreamVerifyConfig::default(),
            #[cfg(feature = "fault-injection")]
            inject: None,
        }
    }

    /// Configures how [`Compiler::compile_stream`] verifies completed
    /// windows — worker count, support restriction, and miter batching;
    /// see [`StreamVerifyConfig`]. The default is serial,
    /// support-restricted, batched verification.
    pub fn with_stream_verify(mut self, config: StreamVerifyConfig) -> Self {
        self.stream_verify = config;
        self
    }

    /// Shorthand for [`Compiler::with_stream_verify`] changing only the
    /// worker count (the optimization levers keep their defaults).
    pub fn with_stream_verify_jobs(mut self, jobs: usize) -> Self {
        self.stream_verify.jobs = jobs;
        self
    }

    /// The active streaming-verification configuration.
    pub fn stream_verify(&self) -> StreamVerifyConfig {
        self.stream_verify
    }

    /// Bounds this compiler's resource usage (wall clock, QMDD nodes,
    /// optimizer rounds, routing SWAPs) — see [`CompileBudget`]. The
    /// default is unlimited.
    pub fn with_budget(mut self, budget: CompileBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The active resource budget.
    pub fn budget(&self) -> &CompileBudget {
        &self.budget
    }

    /// Selects the caching layers (see [`CacheMode`]): `Off` disables
    /// everything and runs the legacy per-gate searches, `Tables` (the
    /// default) uses the shared routing tables and decomposition memo —
    /// both transparent, byte-identical accelerations — and `Mem` adds
    /// whole-result compile memoization keyed by the structural hash of
    /// `(circuit, device, cost model, options, budget)`.
    pub fn with_cache(mut self, cache: CacheMode) -> Self {
        self.cache = cache;
        self
    }

    /// The active cache mode.
    pub fn cache(&self) -> CacheMode {
        self.cache
    }

    /// Attaches the on-disk compile-cache tier (see [`crate::persist`]).
    /// Active only under [`CacheMode::Mem`]: on an in-memory miss the
    /// directory is consulted (a validated entry replays exactly like a
    /// memory hit and repopulates the in-memory cache), and every
    /// memoizable fresh result is written back atomically. Corrupted
    /// entries are quarantined and recomputed, never trusted.
    pub fn with_disk_cache(mut self, disk: Arc<crate::persist::DiskCache>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// The attached disk cache, if any.
    pub fn disk_cache(&self) -> Option<&Arc<crate::persist::DiskCache>> {
        self.disk.as_ref()
    }

    /// Arms a deliberate fault that fires at the start of one pass —
    /// exercises sweep fault isolation and budget recovery paths in tests
    /// and CI. Requires the `fault-injection` cargo feature.
    #[cfg(feature = "fault-injection")]
    pub fn with_fault_injection(mut self, spec: crate::budget::FaultSpec) -> Self {
        self.inject = Some(spec);
        self
    }

    /// Selects the SWAP strategy: the paper's swap-out/swap-back CTR or
    /// the persistent-layout router with one final restoration network.
    pub fn with_swap_strategy(mut self, swaps: SwapStrategy) -> Self {
        self.swaps = swaps;
        self
    }

    /// Selects how generalized Toffolis are lowered (exact Clifford+T
    /// chains, as in the paper, or paired relative-phase chains with about
    /// half the T-count).
    pub fn with_decompose_strategy(mut self, strategy: DecomposeStrategy) -> Self {
        self.decompose = strategy;
        self
    }

    /// Selects the CTR routing objective (fewest swaps, as in the paper,
    /// or highest fidelity using device characterization data).
    pub fn with_routing(mut self, routing: RoutingObjective) -> Self {
        self.routing = routing;
        self
    }

    /// Selects the routing strategy (`--route-strategy` on the CLI): the
    /// paper's CTR (the default), the SABRE-style lookahead router, the
    /// lazy-synthesis skeleton, or `Auto`, which resolves per compile from
    /// the cost model's [`route_hint`](qsyn_arch::CostModel::route_hint).
    ///
    /// Only [`RouteStrategyKind::Ctr`] also honors the
    /// [`SwapStrategy`] setting; the second-generation strategies manage
    /// their own layout and restoration.
    pub fn with_route_strategy(mut self, strategy: RouteStrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured routing strategy (possibly `Auto`; resolution against
    /// the cost model happens per compile).
    pub fn route_strategy(&self) -> RouteStrategyKind {
        self.strategy
    }

    /// Replaces the cost model (the tool accepts "any arbitrary quantum
    /// cost function").
    pub fn with_cost_model(mut self, cost: Box<dyn CostModel>) -> Self {
        self.cost = cost;
        self
    }

    /// Selects the placement strategy.
    pub fn with_placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Selects the verification mode.
    pub fn with_verification(mut self, verification: Verification) -> Self {
        self.verification = verification;
        self
    }

    /// Configures the optimization stage. Accepts a `bool` (on/off with
    /// the default families), an [`OptimizeConfig`] (ablation experiments),
    /// an `Option<OptimizeConfig>`, or an [`Optimization`] directly.
    pub fn with_optimization(mut self, optimization: impl Into<Optimization>) -> Self {
        self.optimization = optimization.into();
        self
    }

    /// Streams every pass event of [`Compiler::compile`] to a sink as it
    /// completes (per-pass metrics are always collected either way — see
    /// [`CompileResult::metrics`]; the sink only adds live output).
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Stamps every [`PassEvent`] this compiler emits with a job id.
    ///
    /// Parallel sweep drivers give each (circuit, device) job a distinct id
    /// so that events from concurrently running compilations, interleaved
    /// in one JSONL stream, can be grouped back into per-job Fig. 2 pass
    /// sequences (see `qsyn check-trace`).
    pub fn with_job_id(mut self, job: u64) -> Self {
        self.job = Some(job);
        self
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &dyn CostModel {
        self.cost.as_ref()
    }

    /// Runs the full back-end pipeline on a technology-independent circuit.
    ///
    /// # Errors
    ///
    /// * [`CompileError::TooWide`] — more lines than device qubits (the
    ///   paper's `N/A` case);
    /// * [`CompileError::NoAncilla`] — a generalized Toffoli cannot borrow
    ///   a line (also reported `N/A` in the paper);
    /// * [`CompileError::RouteNotFound`] — disconnected coupling map;
    /// * [`CompileError::VerificationFailed`] — the built-in QMDD check
    ///   rejected the output (never expected; would indicate a compiler
    ///   defect);
    /// * [`CompileError::BudgetExceeded`] — a [`CompileBudget`] cap was
    ///   hit (deadline, QMDD nodes under [`VerifyMode::Strict`], or
    ///   routing SWAPs).
    pub fn compile(&self, input: &Circuit) -> Result<CompileResult, CompileError> {
        if input.n_qubits() > self.device.n_qubits() {
            return Err(CompileError::TooWide {
                needed: input.n_qubits(),
                available: self.device.n_qubits(),
            });
        }
        let started = std::time::Instant::now();
        // Whole-result memoization (Mem mode only). Armed fault injection
        // bypasses the cache: injected failures must actually fire.
        let cache_key = if self.cache == CacheMode::Mem && !self.fault_injection_armed() {
            self.check_deadline(started, Pass::Place)?;
            let key = self.compile_key(input);
            if let Some(key) = key {
                if let Some(hit) = crate::cache::compile_cache_get(key) {
                    return Ok(self.replay_cached(&hit, started));
                }
                // Memory miss: lazily consult the disk tier. A validated
                // entry repopulates the in-memory cache and replays like
                // any other hit; an invalid one has already been
                // quarantined and we recompute below.
                if let Some(disk) = &self.disk {
                    if let crate::persist::DiskLoad::Hit(hit) = disk.load(key) {
                        crate::cache::compile_cache_insert(key, Arc::new((*hit).clone()));
                        return Ok(self.replay_cached(&hit, started));
                    }
                }
            }
            key
        } else {
            None
        };
        let mut events: Vec<PassEvent> = Vec::new();
        let mut record = |mut e: PassEvent| {
            e.job = self.job;
            if let Some(sink) = &self.trace {
                sink.record(&e);
            }
            events.push(e);
        };

        // Placement.
        self.check_deadline(started, Pass::Place)?;
        self.maybe_inject(Pass::Place)?;
        let snap_input = StageSnapshot::of(input);
        let span = Span::begin(Pass::Place);
        let placement = place(input, &self.device, self.placement);
        let mut placed = placement.apply(input, &self.device);
        let base_name = input.name().unwrap_or("circuit").to_string();
        placed.set_name(base_name.clone());
        let snap_placed = StageSnapshot::of(&placed);
        record(self.finish(span, snap_input, snap_placed, |s| {
            s.counter("identity_placement", f64::from(u8::from(placement.is_identity())));
        }));

        // Decomposition (Barenco + Clifford+T lowering).
        self.check_deadline(started, Pass::Decompose)?;
        self.maybe_inject(Pass::Decompose)?;
        let span = Span::begin(Pass::Decompose);
        let (decomposed, memo) = if self.cache == CacheMode::Off {
            let c = decompose_circuit_with(&placed, Some(&self.device), self.decompose)?;
            (c, None)
        } else {
            let (c, k) = decompose_circuit_memo(&placed, Some(&self.device), self.decompose)?;
            (c, Some(k))
        };
        let snap_decomposed = StageSnapshot::of(&decomposed);
        record(self.finish(span, snap_placed, snap_decomposed, |s| {
            if let Some(k) = memo {
                s.counter("mct_memo_hits", k.memo_hits as f64);
                s.counter("mct_memo_misses", k.memo_misses as f64);
            }
        }));

        // Routing against the coupling map.
        self.check_deadline(started, Pass::Route)?;
        self.maybe_inject(Pass::Route)?;
        let span = Span::begin(Pass::Route);
        let resolved = self.strategy.resolve(self.cost.route_hint());
        let mut extra_counters: Vec<(String, f64)> = Vec::new();
        let (mut unoptimized, swaps_inserted, gates_rerouted, restoration, table_reused) =
            if resolved == RouteStrategyKind::Ctr {
                // CTR is the only strategy that also honors the
                // SwapStrategy knob; its three arms stay byte-identical to
                // the pre-strategy compiler.
                match self.swaps {
                    SwapStrategy::ReturnControl if self.cache == CacheMode::Off => {
                        // Legacy path: a fresh BFS/Dijkstra per CNOT.
                        let (c, k) = route_bounded_uncached(
                            &decomposed,
                            &self.device,
                            self.routing,
                            self.budget.max_route_swaps,
                        )?;
                        (c, k.swaps_inserted, k.gates_rerouted, 0, None)
                    }
                    SwapStrategy::ReturnControl => {
                        // Shared routing state for this (device, objective):
                        // the dense all-pairs table on small devices, the
                        // sparse distance oracle at scale (identical routes
                        // either way — both memoize the same per-pair
                        // search).
                        let (lookup, reused) =
                            crate::cache::routing_lookup(&self.device, self.routing);
                        let (c, k) = match &lookup {
                            crate::cache::RoutingLookup::Dense(table) => route_bounded_via(
                                &decomposed,
                                &self.device,
                                table,
                                self.budget.max_route_swaps,
                            )?,
                            crate::cache::RoutingLookup::Sparse(oracle) => {
                                let (h0, m0) = (oracle.hit_count(), oracle.miss_count());
                                let out = crate::route::route_bounded_via_oracle(
                                    &decomposed,
                                    &self.device,
                                    oracle,
                                    self.budget.max_route_swaps,
                                )?;
                                extra_counters.push((
                                    "oracle_hits".to_string(),
                                    (oracle.hit_count() - h0) as f64,
                                ));
                                extra_counters.push((
                                    "oracle_misses".to_string(),
                                    (oracle.miss_count() - m0) as f64,
                                ));
                                out
                            }
                        };
                        (c, k.swaps_inserted, k.gates_rerouted, 0, Some(reused))
                    }
                    SwapStrategy::PersistentLayout => {
                        let (c, k) = route_circuit_persistent_traced(
                            &decomposed,
                            &self.device,
                            self.routing,
                        )?;
                        // The persistent router computes the restoration network at
                        // the end, so the cap is enforced on the completed total.
                        if let Some(cap) = self.budget.max_route_swaps {
                            let total = k.swaps_inserted + k.restoration_swaps;
                            if total > cap {
                                return Err(CompileError::BudgetExceeded {
                                    pass: Pass::Route,
                                    resource: BudgetResource::RouteSwaps,
                                    limit: cap as u64,
                                    used: total as u64,
                                });
                            }
                        }
                        (c, k.swaps_inserted, k.gates_rerouted, k.restoration_swaps, None)
                    }
                }
            } else {
                // Second-generation strategies run through the trait with a
                // RouteRequest; they manage layout and restoration
                // themselves, so the SwapStrategy knob does not apply.
                let mut req = RouteRequest::new(&decomposed, &self.device)
                    .with_objective(self.routing)
                    .with_max_swaps(self.budget.max_route_swaps);
                let mut oracle_used = None;
                let reused = if self.cache == CacheMode::Off {
                    None
                } else {
                    let (lookup, reused) =
                        crate::cache::routing_lookup(&self.device, self.routing);
                    match lookup {
                        crate::cache::RoutingLookup::Dense(table) => {
                            req = req.with_table(table);
                        }
                        crate::cache::RoutingLookup::Sparse(oracle) => {
                            oracle_used = Some(oracle.clone());
                            req = req.with_oracle(oracle);
                        }
                    }
                    Some(reused)
                };
                let baseline =
                    oracle_used.as_ref().map(|o| (o.hit_count(), o.miss_count()));
                if let Some(sink) = &self.trace {
                    req = req.with_trace(sink.clone());
                }
                let outcome = resolved.instance().route(&req)?;
                extra_counters = outcome.extra;
                if let (Some(o), Some((h0, m0))) = (&oracle_used, baseline) {
                    extra_counters
                        .push(("oracle_hits".to_string(), (o.hit_count() - h0) as f64));
                    extra_counters
                        .push(("oracle_misses".to_string(), (o.miss_count() - m0) as f64));
                }
                (
                    outcome.circuit,
                    outcome.swaps_inserted,
                    outcome.gates_rerouted,
                    outcome.restoration_swaps,
                    reused,
                )
            };
        unoptimized.set_name(format!("{base_name}@{}", self.device.name()));
        let snap_routed = StageSnapshot::of(&unoptimized);
        record(self.finish(span, snap_decomposed, snap_routed, |s| {
            if let Some(tag) = resolved.tag() {
                s.counter("strategy", tag);
            }
            s.counter("swaps_inserted", swaps_inserted as f64);
            s.counter("gates_rerouted", gates_rerouted as f64);
            if self.swaps == SwapStrategy::PersistentLayout || restoration > 0 {
                s.counter("restoration_swaps", restoration as f64);
            }
            if let Some(cap) = self.budget.max_route_swaps {
                s.counter("swap_cap", cap as f64);
            }
            if let Some(reused) = table_reused {
                s.counter("routing_table_reused", f64::from(u8::from(reused)));
            }
            for (name, value) in &extra_counters {
                s.counter(name, *value);
            }
        }));

        // Local optimization (an event is emitted even when disabled, so
        // the Fig. 2 event order is stable; `enabled` disambiguates).
        self.check_deadline(started, Pass::Optimize)?;
        self.maybe_inject(Pass::Optimize)?;
        let span = Span::begin(Pass::Optimize);
        let (optimized, opt_counters) = match self.optimization.config() {
            Some(cfg) => optimize_bounded(
                &unoptimized,
                Some(&self.device),
                self.cost.as_ref(),
                cfg,
                self.budget.max_optimize_rounds,
            ),
            None => (unoptimized.clone(), OptimizeCounters::default()),
        };
        let snap_optimized = StageSnapshot::of(&optimized);
        record(self.finish(span, snap_routed, snap_optimized, |s| {
            s.counter(
                "enabled",
                f64::from(u8::from(self.optimization != Optimization::Disabled)),
            );
            s.counter("rounds", opt_counters.rounds as f64);
            s.counter("gates_removed", opt_counters.gates_removed as f64);
            s.counter("capped", f64::from(u8::from(opt_counters.capped)));
        }));

        // QMDD formal verification (degradation ladder under the budget).
        // The injection hook fires at the pass boundary even when
        // verification is disabled, so `--inject-fault verify:*` exercises
        // the recovery path in `--no-verify` sweeps too.
        self.maybe_inject(Pass::Verify)?;
        let verdict = match self.effective_verification() {
            Verification::None => Verdict::Skipped,
            mode => self.run_verify_ladder(
                mode,
                started,
                &placed,
                &optimized,
                snap_optimized,
                &mut record,
            )?,
        };
        let verified = verdict.as_verified();

        let metrics = CompileMetrics {
            circuit: base_name,
            device: self.device.name().to_string(),
            cost_model: self.cost.name().to_string(),
            events,
            verified,
            verdict,
            total_seconds: started.elapsed().as_secs_f64(),
            cache_hit: false,
        };
        if let Some(sink) = &self.trace {
            sink.flush();
        }
        if verified == Some(false) {
            return Err(CompileError::VerificationFailed);
        }

        let result = CompileResult {
            placement,
            placed,
            unoptimized,
            optimized,
            verified,
            metrics,
        };
        // Unverified verdicts are transient — a deadline expired mid-verify
        // or a degraded budget, both of which a fresh run may not repeat —
        // so, like errors, they are never memoized.
        if let Some(key) = cache_key {
            if !result.metrics.verdict.is_unverified() {
                crate::cache::compile_cache_insert(key, Arc::new(result.clone()));
                // Persist best-effort: a full disk or unwritable directory
                // costs the warm restart, not the compile.
                if let Some(disk) = &self.disk {
                    let _ = disk.store(key, &result);
                }
            }
        }
        Ok(result)
    }

    /// Streaming compilation: maps a gate stream window by window, keeping
    /// only one bounded window of the circuit resident at a time, so a
    /// million-gate input on a thousand-qubit device compiles in
    /// near-constant memory.
    ///
    /// Gates are buffered into windows of at most `window` input gates;
    /// each window runs the decompose → route → optimize stages and is
    /// handed to `emit` gate by gate. Every built-in strategy returns the
    /// layout to identity at its window boundary (CTR restores per gate,
    /// the lookahead family appends one restoration network), so the
    /// emitted windows concatenate into a circuit equivalent to the input
    /// stream. Placement is always identity — a streaming compile never
    /// sees the whole circuit, so there is nothing to place against — and
    /// the [`SwapStrategy`] knob does not apply (windows route through the
    /// strategy trait).
    ///
    /// Verification is windowed: each window's output is checked against
    /// its own specification with the interleaved miter under the
    /// compiler's [`CompileBudget`] node budget (window equivalence
    /// composes to whole-stream equivalence). By default the miter is
    /// *support-restricted* — built on a compacted register holding only
    /// the qubits the window actually touches, which on sparse windows of
    /// a wide device shrinks the QMDD walks by an order of magnitude —
    /// and applies gates in small fused blocks; both levers are proven
    /// verdict-identical to the full-register serial miter and are
    /// configurable through [`Compiler::with_stream_verify`] (the
    /// [`StreamVerifyConfig::full_register_serial`] configuration keeps
    /// the original path callable for differential runs). With
    /// `jobs > 1`, completed windows are verified as jobs on a
    /// [`crate::pool::WorkerPool`], pipelined behind the
    /// decompose → route → optimize of subsequent windows; at most
    /// `2 × jobs` windows are in flight, so pipelining cannot grow memory
    /// with stream length. Under [`VerifyMode::Degrade`] an exhausted
    /// window is counted in [`StreamSummary::unverified_windows`] instead
    /// of aborting; under [`VerifyMode::Strict`] it is a hard
    /// [`CompileError::BudgetExceeded`] — and because Strict must abort
    /// *before* the offending window is emitted, Strict verification
    /// always runs inline regardless of `jobs`. The per-window SWAP cap
    /// is [`CompileBudget::max_route_swaps`].
    ///
    /// When a trace sink is configured, one aggregate route event is
    /// emitted at the end of the stream carrying the streaming counters
    /// (`windows`, `window_gates_cap`, `max_window_swaps`,
    /// `oracle_hits`/`oracle_misses`, `verified_windows`,
    /// `unverified_windows`, `peak_resident_gates`,
    /// `max_window_support`, `verify_seconds_total`, `verify_jobs`) that
    /// `qsyn check-trace` validates.
    ///
    /// # Errors
    ///
    /// The same pipeline errors as [`Compiler::compile`], surfaced at the
    /// window that triggers them; additionally
    /// [`CompileError::VerificationFailed`] if any window's miter check
    /// rejects (a compiler defect, never expected).
    pub fn compile_stream<I>(
        &self,
        n_qubits: usize,
        window: usize,
        gates: I,
        mut emit: impl FnMut(&qsyn_gate::Gate),
    ) -> Result<StreamSummary, CompileError>
    where
        I: IntoIterator<Item = qsyn_gate::Gate>,
    {
        if n_qubits > self.device.n_qubits() {
            return Err(CompileError::TooWide {
                needed: n_qubits,
                available: self.device.n_qubits(),
            });
        }
        let started = std::time::Instant::now();
        let window = window.max(1);
        let resolved = self.strategy.resolve(self.cost.route_hint());
        let lookup = (self.cache != CacheMode::Off)
            .then(|| crate::cache::routing_lookup(&self.device, self.routing).0);
        let oracle = match &lookup {
            Some(crate::cache::RoutingLookup::Sparse(o)) => Some(o.clone()),
            _ => None,
        };
        let baseline = oracle.as_ref().map(|o| (o.hit_count(), o.miss_count()));
        let verify = !matches!(self.effective_verification(), Verification::None);
        let verifier = verify.then(|| self.stream_verifier());

        let mut acc = StreamSummary {
            windows: 0,
            window_gates: window,
            gates_in: 0,
            gates_out: 0,
            swaps_inserted: 0,
            max_window_swaps: 0,
            verified_windows: 0,
            unverified_windows: 0,
            peak_resident_gates: 0,
            max_window_support: 0,
            oracle_hits: 0,
            oracle_misses: 0,
            verdict: Verdict::Skipped,
            total_seconds: 0.0,
            verify_seconds_total: 0.0,
            verify_p95_seconds: 0.0,
            verify_jobs: 0,
        };
        let mut buf = Circuit::new(self.device.n_qubits());
        for g in gates {
            acc.gates_in += 1;
            buf.push(g);
            if buf.gates().len() >= window {
                self.check_deadline(started, Pass::Route)?;
                self.stream_flush(
                    &buf,
                    resolved,
                    lookup.as_ref(),
                    verifier.as_ref(),
                    &mut acc,
                    &mut emit,
                )?;
                buf = Circuit::new(self.device.n_qubits());
            }
        }
        if !buf.gates().is_empty() {
            self.check_deadline(started, Pass::Route)?;
            self.stream_flush(
                &buf,
                resolved,
                lookup.as_ref(),
                verifier.as_ref(),
                &mut acc,
                &mut emit,
            )?;
        }
        if let Some(v) = &verifier {
            v.finish(&mut acc)?;
        }

        if let (Some(o), Some((h0, m0))) = (&oracle, baseline) {
            acc.oracle_hits = o.hit_count() - h0;
            acc.oracle_misses = o.miss_count() - m0;
        }
        acc.verdict = if !verify {
            Verdict::Skipped
        } else if acc.unverified_windows == 0 {
            Verdict::Verified {
                method: "windowed-miter".to_string(),
            }
        } else {
            Verdict::Unverified {
                reason: format!(
                    "{} of {} window(s) exhausted the QMDD node budget",
                    acc.unverified_windows, acc.windows
                ),
            }
        };
        acc.total_seconds = started.elapsed().as_secs_f64();

        if let Some(sink) = &self.trace {
            let span = Span::begin(Pass::Route);
            let empty = StageSnapshot::of(&Circuit::new(self.device.n_qubits()));
            // Counter names come from `qsyn_trace::streaming` so the
            // emitter and `check-trace`'s validator cannot drift apart.
            use qsyn_trace::streaming as sc;
            let mut e = self.finish(span, empty, empty, |s| {
                s.counter(sc::STREAMING, 1.0);
                s.counter(sc::WINDOWS, acc.windows as f64);
                s.counter(sc::WINDOW_GATES_CAP, acc.window_gates as f64);
                s.counter(sc::SWAPS_INSERTED, acc.swaps_inserted as f64);
                s.counter(sc::MAX_WINDOW_SWAPS, acc.max_window_swaps as f64);
                if let Some(cap) = self.budget.max_route_swaps {
                    s.counter(sc::WINDOW_SWAP_CAP, cap as f64);
                }
                if oracle.is_some() {
                    s.counter(sc::ORACLE_HITS, acc.oracle_hits as f64);
                    s.counter(sc::ORACLE_MISSES, acc.oracle_misses as f64);
                }
                s.counter(sc::VERIFIED_WINDOWS, acc.verified_windows as f64);
                s.counter(sc::UNVERIFIED_WINDOWS, acc.unverified_windows as f64);
                s.counter(sc::PEAK_RESIDENT_GATES, acc.peak_resident_gates as f64);
                s.counter(sc::MAX_WINDOW_SUPPORT, acc.max_window_support as f64);
                s.counter(sc::VERIFY_SECONDS_TOTAL, acc.verify_seconds_total);
                s.counter(sc::VERIFY_JOBS, acc.verify_jobs as f64);
            });
            e.job = self.job;
            sink.record(&e);
            sink.flush();
        }
        Ok(acc)
    }

    /// Builds the per-stream verification state for `compile_stream`:
    /// the resolved [`StreamVerifyConfig`], the equivalence budget, the
    /// local latency histogram, and — for parallel runs — the worker
    /// pool plus the shared accumulator its jobs write into.
    ///
    /// Parallel verification requires [`VerifyMode::Degrade`]: Strict
    /// mode must abort before the failing window is emitted, which only
    /// an inline check can guarantee, so Strict (or `jobs <= 1`) runs
    /// serial regardless of the configured job count.
    fn stream_verifier(&self) -> StreamVerifier {
        let cfg = self.stream_verify.normalized();
        // Jump straight to the ladder's forced-GC rung: under a node
        // budget the default watermark (far above any sane window
        // budget) would let the arena latch the budget before a single
        // collection ran, even when the live set is tiny.
        let equiv_budget = EquivBudget {
            gc_threshold: self.budget.qmdd_node_budget.map(|n| (n / 2).max(2)),
            node_budget: self.budget.qmdd_node_budget,
        };
        let par = (cfg.jobs > 1 && self.budget.verify_mode == VerifyMode::Degrade).then(|| {
            StreamVerifyPool {
                pool: crate::pool::WorkerPool::new(cfg.jobs),
                shared: Arc::new(StreamVerifyShared {
                    state: Mutex::new(StreamVerifyState::default()),
                    done: Condvar::new(),
                }),
                cap: cfg.in_flight_cap(),
            }
        });
        StreamVerifier {
            cfg,
            equiv_budget,
            hist: Arc::new(qsyn_trace::metrics::Histogram::default()),
            par,
        }
    }

    /// Runs one streaming window through decompose → route → optimize →
    /// windowed miter verification and hands the output to `emit`.
    fn stream_flush(
        &self,
        buf: &Circuit,
        resolved: RouteStrategyKind,
        lookup: Option<&crate::cache::RoutingLookup>,
        verifier: Option<&StreamVerifier>,
        acc: &mut StreamSummary,
        emit: &mut dyn FnMut(&qsyn_gate::Gate),
    ) -> Result<(), CompileError> {
        acc.windows += 1;
        let decomposed = if self.cache == CacheMode::Off {
            decompose_circuit_with(buf, Some(&self.device), self.decompose)?
        } else {
            decompose_circuit_memo(buf, Some(&self.device), self.decompose)?.0
        };
        let mut req = RouteRequest::new(&decomposed, &self.device)
            .with_objective(self.routing)
            .with_max_swaps(self.budget.max_route_swaps);
        match lookup {
            Some(crate::cache::RoutingLookup::Dense(table)) => {
                req = req.with_table(table.clone());
            }
            Some(crate::cache::RoutingLookup::Sparse(oracle)) => {
                req = req.with_oracle(oracle.clone());
            }
            None => {}
        }
        let outcome = resolved.instance().route(&req)?;
        let window_swaps = outcome.total_swaps();
        acc.swaps_inserted += window_swaps;
        acc.max_window_swaps = acc.max_window_swaps.max(window_swaps);
        let optimized = match self.optimization.config() {
            Some(cfg) => {
                optimize_bounded(
                    &outcome.circuit,
                    Some(&self.device),
                    self.cost.as_ref(),
                    cfg,
                    self.budget.max_optimize_rounds,
                )
                .0
            }
            None => outcome.circuit,
        };
        acc.peak_resident_gates = acc
            .peak_resident_gates
            .max(buf.gates().len())
            .max(decomposed.gates().len())
            .max(optimized.gates().len());
        if let Some(v) = verifier {
            if let Some(par) = &v.par {
                // Bounded in-flight window queue: block until a slot frees
                // up, so at most `cap` (spec, output) window clones are
                // alive awaiting verification no matter how long the
                // stream runs.
                {
                    let mut st = par.shared.state.lock().expect("stream verify poisoned");
                    while st.in_flight >= par.cap && !st.failed {
                        st = par.shared.done.wait(st).expect("stream verify poisoned");
                    }
                    if st.failed {
                        return Err(CompileError::VerificationFailed);
                    }
                    st.in_flight += 1;
                }
                let spec = buf.clone();
                let out = optimized.clone();
                let shared = Arc::clone(&par.shared);
                let hist = Arc::clone(&v.hist);
                let (budget, cfg) = (v.equiv_budget, v.cfg);
                par.pool.submit(move || {
                    let _slot = StreamSlotGuard(Arc::clone(&shared));
                    let (res, support, seconds) = verify_one_window(&spec, &out, budget, cfg);
                    hist.record_seconds(seconds);
                    let mut st = shared.state.lock().expect("stream verify poisoned");
                    st.seconds_total += seconds;
                    st.max_support = st.max_support.max(support);
                    match res {
                        Ok(true) => st.verified += 1,
                        Ok(false) => st.failed = true,
                        Err(_) => st.unverified += 1,
                    }
                });
            } else {
                let (res, support, seconds) =
                    verify_one_window(buf, &optimized, v.equiv_budget, v.cfg);
                v.hist.record_seconds(seconds);
                acc.verify_seconds_total += seconds;
                acc.max_window_support = acc.max_window_support.max(support);
                match res {
                    Ok(true) => acc.verified_windows += 1,
                    Ok(false) => return Err(CompileError::VerificationFailed),
                    Err(e) => match self.budget.verify_mode {
                        VerifyMode::Strict => {
                            return Err(CompileError::BudgetExceeded {
                                pass: Pass::Verify,
                                resource: BudgetResource::QmddNodes,
                                limit: e.limit as u64,
                                used: e.used as u64,
                            })
                        }
                        VerifyMode::Degrade => acc.unverified_windows += 1,
                    },
                }
            }
        }
        for g in optimized.gates() {
            acc.gates_out += 1;
            emit(g);
        }
        Ok(())
    }

    /// Structural key of one compile request: every input the pipeline's
    /// output depends on. Two requests with equal keys are guaranteed to
    /// produce identical results, so the memoized result can be replayed.
    ///
    /// `None` when the cost model is not content-addressable
    /// ([`CostModel::cache_params`] returns `None`): its name alone cannot
    /// distinguish it from a same-named model with different pricing, so
    /// memoization is skipped rather than risking a key collision.
    pub(crate) fn compile_key(&self, input: &Circuit) -> Option<u128> {
        let params = self.cost.cache_params()?;
        let mut h = qsyn_circuit::Fnv128::new();
        h.write_u128(input.structural_hash());
        h.write_u128(self.device.fingerprint());
        h.write_str(self.cost.name());
        h.write_usize(params.len());
        for p in params {
            h.write_f64(p);
        }
        // Option enums all have stable, value-complete Debug forms.
        h.write_str(&format!("{:?}", self.placement));
        h.write_str(&format!("{:?}", self.routing));
        h.write_str(&format!("{:?}", self.strategy));
        h.write_str(&format!("{:?}", self.swaps));
        h.write_str(&format!("{:?}", self.decompose));
        h.write_str(&format!("{:?}", self.verification));
        h.write_str(&format!("{:?}", self.optimization));
        h.write_str(&format!("{:?}", self.budget));
        Some(h.finish())
    }

    /// Replays a compile-cache hit: clones the memoized result, restamps
    /// the per-pass events for this compiler's job, marks every event with
    /// a `cache_hit` counter, and re-emits the stream to the trace sink so
    /// cached compiles stay fully observable.
    fn replay_cached(&self, cached: &CompileResult, started: std::time::Instant) -> CompileResult {
        let mut result = cached.clone();
        for e in &mut result.metrics.events {
            e.job = self.job;
            e.counters.push(("cache_hit".to_string(), 1.0));
            if let Some(sink) = &self.trace {
                sink.record(e);
            }
        }
        result.metrics.cache_hit = true;
        result.metrics.total_seconds = started.elapsed().as_secs_f64();
        if let Some(sink) = &self.trace {
            sink.flush();
        }
        result
    }

    #[cfg(feature = "fault-injection")]
    fn fault_injection_armed(&self) -> bool {
        self.inject.is_some()
    }

    #[cfg(not(feature = "fault-injection"))]
    #[inline]
    fn fault_injection_armed(&self) -> bool {
        false
    }

    /// Prices the in/out snapshots under the active cost model, attaches
    /// counters, and closes the span.
    fn finish(
        &self,
        mut span: Span,
        input: StageSnapshot,
        output: StageSnapshot,
        counters: impl FnOnce(&mut Span),
    ) -> PassEvent {
        counters(&mut span);
        let event = span.finish(
            input,
            output,
            self.cost.cost(&input.stats),
            self.cost.cost(&output.stats),
        );
        note_pass_metrics(&event);
        event
    }

    /// Fails with a wall-clock [`CompileError::BudgetExceeded`] when the
    /// budget deadline has passed (checked at every pass boundary).
    fn check_deadline(
        &self,
        started: std::time::Instant,
        pass: Pass,
    ) -> Result<(), CompileError> {
        match self.budget.deadline {
            Some(deadline) if started.elapsed() > deadline => {
                Err(CompileError::BudgetExceeded {
                    pass,
                    resource: BudgetResource::WallClock,
                    limit: deadline.as_millis() as u64,
                    used: started.elapsed().as_millis() as u64,
                })
            }
            _ => Ok(()),
        }
    }

    #[cfg(feature = "fault-injection")]
    fn maybe_inject(&self, pass: Pass) -> Result<(), CompileError> {
        use crate::budget::FaultKind;
        match self.inject {
            Some(spec) if spec.pass == pass => match spec.kind {
                FaultKind::Panic => panic!("injected fault: panic in {pass} pass"),
                FaultKind::Budget => Err(CompileError::BudgetExceeded {
                    pass,
                    resource: BudgetResource::QmddNodes,
                    limit: 0,
                    used: 0,
                }),
                FaultKind::VerifyFail => Err(CompileError::VerificationFailed),
            },
            _ => Ok(()),
        }
    }

    #[cfg(not(feature = "fault-injection"))]
    #[inline]
    fn maybe_inject(&self, _pass: Pass) -> Result<(), CompileError> {
        Ok(())
    }

    /// Walks the verification degradation ladder and emits the verify
    /// [`PassEvent`].
    ///
    /// Rungs, in order (later rungs only exist under a node budget, where
    /// exhaustion is possible):
    ///
    /// 1. the requested check (`canonical` or `miter`) with no forced GC;
    /// 2. the same check with an aggressive GC watermark (half the budget),
    ///    trading time for arena headroom;
    /// 3. for canonical mode, the interleaved `miter` check, whose working
    ///    set is typically far smaller.
    ///
    /// A rung that completes yields [`Verdict::Verified`] or
    /// [`Verdict::Failed`] naming the method. A rung that exhausts the
    /// node budget falls through to the next; when every rung exhausts,
    /// [`VerifyMode::Degrade`] records an explicit
    /// [`Verdict::Unverified`] (with an `unverified` counter on the event
    /// so traces flag it loudly) while [`VerifyMode::Strict`] aborts the
    /// compile with [`CompileError::BudgetExceeded`].
    fn run_verify_ladder(
        &self,
        mode: Verification,
        started: std::time::Instant,
        spec: &Circuit,
        output: &Circuit,
        snap: StageSnapshot,
        record: &mut dyn FnMut(PassEvent),
    ) -> Result<Verdict, CompileError> {
        if let Err(e) = self.check_deadline(started, Pass::Verify) {
            match self.budget.verify_mode {
                VerifyMode::Strict => return Err(e),
                VerifyMode::Degrade => {
                    let span = Span::begin(Pass::Verify);
                    record(self.finish(span, snap, snap, |s| {
                        s.counter("unverified", 1.0);
                        s.counter("ladder_rungs_tried", 0.0);
                    }));
                    return Ok(Verdict::Unverified {
                        reason: "wall-clock deadline reached before verification".to_string(),
                    });
                }
            }
        }

        let nb = self.budget.qmdd_node_budget;
        let mut rungs: Vec<(&'static str, EquivBudget, bool)> = Vec::new();
        let base = EquivBudget {
            gc_threshold: None,
            node_budget: nb,
        };
        let is_miter = !matches!(mode, Verification::Canonical);
        rungs.push((if is_miter { "miter" } else { "canonical" }, base, is_miter));
        if let Some(n) = nb {
            // Only a finite budget can exhaust; add the fallback rungs.
            let gc = EquivBudget {
                gc_threshold: Some((n / 2).max(2)),
                node_budget: nb,
            };
            if is_miter {
                rungs.push(("miter+gc", gc, true));
            } else {
                rungs.push(("canonical+gc", gc, false));
                rungs.push(("miter", gc, true));
            }
        }

        let span = Span::begin(Pass::Verify);
        let mut tried = 0usize;
        let mut last_err: Option<EquivBudgetError> = None;
        for (rung, (method, budget, miter)) in rungs.into_iter().enumerate() {
            if rung > 0 && self.check_deadline(started, Pass::Verify).is_err() {
                break; // deadline mid-ladder: stop retrying, degrade below
            }
            tried += 1;
            let result = if miter {
                try_equivalent_miter(spec, output, budget)
            } else {
                try_equivalent(spec, output, budget)
            };
            match result {
                Ok(report) => {
                    record(self.finish(span, snap, snap, |s| {
                        s.counter("peak_nodes", report.peak_nodes as f64);
                        s.counter("unique_nodes", report.unique_nodes as f64);
                        s.counter("cache_lookups", report.cache_lookups as f64);
                        s.counter("cache_hit_rate", report.cache_hit_rate());
                        s.counter("cache_evictions", report.cache_evictions as f64);
                        s.counter("gc_runs", report.gc_runs as f64);
                        s.counter("nodes_reclaimed", report.nodes_reclaimed as f64);
                        s.counter("ladder_rung", (rung + 1) as f64);
                        s.counter("unverified", 0.0);
                    }));
                    let method = method.to_string();
                    return Ok(if report.equivalent {
                        Verdict::Verified { method }
                    } else {
                        Verdict::Failed { method }
                    });
                }
                Err(e) => {
                    if self.budget.verify_mode == VerifyMode::Strict {
                        return Err(CompileError::BudgetExceeded {
                            pass: Pass::Verify,
                            resource: BudgetResource::QmddNodes,
                            limit: e.limit as u64,
                            used: e.used as u64,
                        });
                    }
                    last_err = Some(e);
                }
            }
        }

        // Every rung exhausted (or the deadline cut the ladder short):
        // an explicit, loud "unverified" — never a silent pass.
        let reason = match last_err {
            Some(e) => format!("verification ladder exhausted after {tried} rung(s): {e}"),
            None => "wall-clock deadline cut the verification ladder short".to_string(),
        };
        record(self.finish(span, snap, snap, |s| {
            s.counter("unverified", 1.0);
            s.counter("ladder_rungs_tried", tried as f64);
        }));
        Ok(Verdict::Unverified { reason })
    }

    fn effective_verification(&self) -> Verification {
        match self.verification {
            Verification::Auto => {
                if self.device.n_qubits() <= 16 {
                    Verification::Canonical
                } else {
                    Verification::Miter
                }
            }
            other => other,
        }
    }
}

/// Feeds one closed pass span into the live metrics registry: a
/// wall-time histogram per pass (`pass.<name>_us`) and, for routing
/// events carrying a strategy tag, one per routing strategy
/// (`route.<strategy>_us`). Cached compiles replay their events without
/// re-closing spans, so replayed (zero-work) events never pollute these
/// histograms.
fn note_pass_metrics(e: &PassEvent) {
    use qsyn_trace::metrics::{global, Histogram};
    use std::sync::{Arc, OnceLock};
    const PASSES: usize = Pass::FIG2_ORDER.len();
    static PER_PASS: [OnceLock<Arc<Histogram>>; PASSES] = [const { OnceLock::new() }; PASSES];
    static PER_STRATEGY: [OnceLock<Arc<Histogram>>; qsyn_trace::ROUTE_STRATEGY_NAMES.len()] =
        [const { OnceLock::new() }; qsyn_trace::ROUTE_STRATEGY_NAMES.len()];
    if let Some(i) = Pass::FIG2_ORDER.iter().position(|p| *p == e.pass) {
        PER_PASS[i]
            .get_or_init(|| global().histogram(&format!("pass.{}_us", e.pass.name())))
            .record_seconds(e.seconds);
    }
    if e.pass == Pass::Route {
        if let Some(name) = e.counter("strategy").and_then(qsyn_trace::route_strategy_name) {
            let i = qsyn_trace::ROUTE_STRATEGY_NAMES
                .iter()
                .position(|n| *n == name)
                .expect("strategy name comes from the table");
            PER_STRATEGY[i]
                .get_or_init(|| global().histogram(&format!("route.{name}_us")))
                .record_seconds(e.seconds);
        }
    }
}

/// Aggregate counters of one [`Compiler::compile_stream`] run — the
/// streaming counterpart of [`CompileResult`], sized O(1) regardless of
/// stream length.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Windows processed (the last one may be short).
    pub windows: usize,
    /// The configured per-window input-gate cap.
    pub window_gates: usize,
    /// Input gates consumed from the stream.
    pub gates_in: usize,
    /// Output gates handed to the emit callback.
    pub gates_out: usize,
    /// Adjacent SWAPs inserted across all windows (including per-window
    /// restoration networks).
    pub swaps_inserted: usize,
    /// The most SWAPs any single window needed — compare against the
    /// per-window [`CompileBudget::max_route_swaps`] cap.
    pub max_window_swaps: usize,
    /// Windows whose miter check completed and passed.
    pub verified_windows: usize,
    /// Windows whose miter check exhausted the node budget under
    /// [`VerifyMode::Degrade`].
    pub unverified_windows: usize,
    /// The largest number of gates resident at once in any pipeline stage
    /// — the streaming memory bound, independent of stream length.
    pub peak_resident_gates: usize,
    /// The widest miter support any window needed: how many device lines
    /// its spec and routed output actually touched (restoration SWAPs
    /// included). Support-restricted verification builds each window's
    /// miter on this many qubits instead of the full register; zero when
    /// verification is disabled.
    pub max_window_support: usize,
    /// Sparse-oracle memoized-answer hits during routing (zero on dense
    /// small-device compiles).
    pub oracle_hits: u64,
    /// Sparse-oracle misses (rows or routes computed fresh).
    pub oracle_misses: u64,
    /// The aggregate verdict: `Verified { "windowed-miter" }` when every
    /// window checked out, `Unverified` when any window degraded,
    /// `Skipped` under [`Verification::None`].
    pub verdict: Verdict,
    /// Wall-clock seconds for the whole stream.
    pub total_seconds: f64,
    /// CPU seconds spent inside window miter checks, summed across all
    /// verify workers (can exceed wall clock when `verify_jobs > 1`).
    pub verify_seconds_total: f64,
    /// 95th-percentile per-window verify latency in seconds (bucket upper
    /// bound of the run's local histogram); zero when no window was
    /// verified.
    pub verify_p95_seconds: f64,
    /// Verify workers actually used: the configured job count when the
    /// pool ran, `1` for inline (serial or Strict-mode) verification,
    /// `0` when verification was disabled.
    pub verify_jobs: usize,
}

/// Tuning knobs for windowed stream verification — see
/// [`Compiler::with_stream_verify`] and the `compile_stream` docs.
///
/// Every combination produces bit-identical verdicts and output; the
/// knobs trade only time and memory. The default is the fast safe
/// configuration: serial, support-restricted, batch
/// [`DEFAULT_MITER_BATCH`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamVerifyConfig {
    /// Worker threads verifying completed windows (`<= 1` means inline on
    /// the compile thread). Parallel verification engages only under
    /// [`VerifyMode::Degrade`]; Strict mode always verifies inline so it
    /// can abort before a failing window is emitted.
    pub jobs: usize,
    /// Build each window's miter on a compacted register of just the
    /// window's touched qubits instead of the full device register.
    pub restricted: bool,
    /// Fuse up to this many consecutive same-circuit gates into one block
    /// before multiplying into the miter accumulator (`0` and `1` both
    /// mean unbatched).
    pub batch: usize,
}

impl Default for StreamVerifyConfig {
    fn default() -> Self {
        StreamVerifyConfig {
            jobs: 1,
            restricted: true,
            batch: DEFAULT_MITER_BATCH,
        }
    }
}

impl StreamVerifyConfig {
    /// The pre-optimization configuration — full-register, unbatched,
    /// inline — kept callable as the differential baseline: any run under
    /// any other configuration must produce byte-identical output and
    /// identical verdicts to this one.
    pub fn full_register_serial() -> Self {
        StreamVerifyConfig {
            jobs: 1,
            restricted: false,
            batch: 1,
        }
    }

    /// Clamps degenerate values (`jobs`/`batch` of zero) to 1.
    fn normalized(self) -> Self {
        StreamVerifyConfig {
            jobs: self.jobs.max(1),
            restricted: self.restricted,
            batch: self.batch.max(1),
        }
    }

    /// Bound on windows admitted to the verify pipeline but not yet
    /// verified. Each in-flight window holds a clone of its spec and
    /// routed output, so the cap — two windows per worker, enough to keep
    /// every worker fed while the coordinator routes ahead — is what
    /// keeps streaming memory independent of stream length.
    fn in_flight_cap(self) -> usize {
        2 * self.jobs.max(1)
    }
}

/// Mutable state shared between the streaming coordinator and its
/// pool-parallel verify jobs; every field is guarded by
/// [`StreamVerifyShared::state`].
#[derive(Default)]
struct StreamVerifyState {
    /// Windows submitted to the pool and not yet finished.
    in_flight: usize,
    /// Windows whose miter check completed and passed.
    verified: usize,
    /// Windows that exhausted the node budget (Degrade mode).
    unverified: usize,
    /// A miter check rejected, or a verify job panicked: the stream must
    /// end in [`CompileError::VerificationFailed`].
    failed: bool,
    /// Sum of per-window verify seconds across workers.
    seconds_total: f64,
    /// Widest per-window miter support seen.
    max_support: usize,
}

struct StreamVerifyShared {
    state: Mutex<StreamVerifyState>,
    /// Signaled whenever a job releases its in-flight slot (the
    /// coordinator waits here when the in-flight cap is reached).
    done: Condvar,
}

/// Releases one in-flight slot when a verify job ends — **however** it
/// ends. Constructed first thing inside the job so a panic anywhere in
/// the miter check still decrements `in_flight` (otherwise the
/// coordinator would deadlock at the cap) and, because a panicked job
/// produced no verdict, fails the stream rather than silently passing
/// an unchecked window.
struct StreamSlotGuard(Arc<StreamVerifyShared>);

impl Drop for StreamSlotGuard {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("stream verify poisoned");
        st.in_flight -= 1;
        if std::thread::panicking() {
            st.failed = true;
        }
        drop(st);
        self.0.done.notify_all();
    }
}

/// The worker-pool half of a [`StreamVerifier`], present only for
/// parallel (Degrade-mode, `jobs > 1`) runs.
struct StreamVerifyPool {
    pool: crate::pool::WorkerPool,
    shared: Arc<StreamVerifyShared>,
    /// In-flight window cap ([`StreamVerifyConfig::in_flight_cap`]).
    cap: usize,
}

/// Per-stream verification state built by `Compiler::stream_verifier`.
struct StreamVerifier {
    cfg: StreamVerifyConfig,
    equiv_budget: EquivBudget,
    /// Local per-window latency histogram (µs buckets) feeding
    /// [`StreamSummary::verify_p95_seconds`]; kept separate from the
    /// process-wide `stream.verify_us` metric so concurrent streams do
    /// not pollute each other's p95.
    hist: Arc<qsyn_trace::metrics::Histogram>,
    par: Option<StreamVerifyPool>,
}

impl StreamVerifier {
    /// Drains the pool (if any), folds the workers' shared counters into
    /// the summary, and computes the p95. Called once after the last
    /// window is flushed.
    fn finish(&self, acc: &mut StreamSummary) -> Result<(), CompileError> {
        if let Some(par) = &self.par {
            par.pool.drain();
            let st = par.shared.state.lock().expect("stream verify poisoned");
            if st.failed {
                return Err(CompileError::VerificationFailed);
            }
            acc.verified_windows += st.verified;
            acc.unverified_windows += st.unverified;
            acc.verify_seconds_total += st.seconds_total;
            acc.max_window_support = acc.max_window_support.max(st.max_support);
        }
        if let Some(p95_us) = self.hist.snapshot().quantile(0.95) {
            acc.verify_p95_seconds = p95_us as f64 / 1e6;
        }
        acc.verify_jobs = if self.par.is_some() { self.cfg.jobs } else { 1 };
        Ok(())
    }
}

/// Runs one window's miter check under the configured levers and returns
/// the verdict (`Ok(equivalent)` or the budget error), the window's
/// support size, and the seconds spent. Also feeds the process-wide
/// `stream.verify_us` histogram and the
/// `stream.windows_verified`/`stream.windows_unverified` counters.
fn verify_one_window(
    spec: &Circuit,
    out: &Circuit,
    budget: EquivBudget,
    cfg: StreamVerifyConfig,
) -> (Result<bool, EquivBudgetError>, usize, f64) {
    let started = std::time::Instant::now();
    let support = miter_support(spec, out);
    let support_len = support.len();
    let res = if cfg.restricted {
        try_equivalent_miter_on_batched(&support, spec, out, budget, cfg.batch)
    } else {
        try_equivalent_miter_batched(spec, out, budget, cfg.batch)
    }
    .map(|report| report.equivalent);
    let seconds = started.elapsed().as_secs_f64();
    note_window_verify(seconds, &res);
    (res, support_len, seconds)
}

/// Process-wide streaming-verify metrics: one latency sample per window
/// plus an outcome counter (`verified` + `unverified` always equals the
/// histogram count in steady state — a rejected window aborts the stream
/// and is counted by neither). Handles are cached like
/// [`note_pass_metrics`]'s.
fn note_window_verify(seconds: f64, res: &Result<bool, EquivBudgetError>) {
    use qsyn_trace::metrics::{global, Counter, Histogram};
    use std::sync::OnceLock;
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    static VERIFIED: OnceLock<Arc<Counter>> = OnceLock::new();
    static UNVERIFIED: OnceLock<Arc<Counter>> = OnceLock::new();
    HIST.get_or_init(|| global().histogram("stream.verify_us"))
        .record_seconds(seconds);
    match res {
        Ok(true) => VERIFIED
            .get_or_init(|| global().counter("stream.windows_verified"))
            .inc(),
        Ok(false) => {}
        Err(_) => UNVERIFIED
            .get_or_init(|| global().counter("stream.windows_unverified"))
            .inc(),
    }
}

/// Everything the pipeline produced for one input circuit.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// Logical-to-physical assignment used.
    pub placement: Placement,
    /// The specification relabeled onto device lines (what verification
    /// compares against).
    pub placed: Circuit,
    /// The mapped circuit before local optimization (the paper's
    /// "unoptimized mapping" table columns).
    pub unoptimized: Circuit,
    /// The final technology-dependent circuit (the "optimized mapping"
    /// columns; emit with [`qsyn_circuit::to_qasm`]).
    pub optimized: Circuit,
    /// `Some(true)` when a QMDD equivalence check ran and passed; `None`
    /// when verification was disabled or ended
    /// [`Verdict::Unverified`] under a degraded budget (see
    /// [`CompileResult::verdict`] for the distinction).
    pub verified: Option<bool>,
    pub(crate) metrics: CompileMetrics,
}

impl CompileResult {
    /// Structured per-pass metrics of this compilation: one
    /// [`qsyn_trace::PassEvent`] per pipeline stage with wall-clock time,
    /// input/output statistics, cost movement under the compiler's cost
    /// model, and backend counters. Serializable via
    /// [`CompileMetrics::to_json`].
    pub fn metrics(&self) -> &CompileMetrics {
        &self.metrics
    }

    /// The verification verdict: which ladder rung decided (canonical,
    /// forced-GC retry, miter), or why the output is explicitly
    /// unverified. Richer than the boolean [`CompileResult::verified`].
    pub fn verdict(&self) -> &Verdict {
        &self.metrics.verdict
    }

    /// Statistics of the pre-optimization mapping.
    pub fn unoptimized_stats(&self) -> CircuitStats {
        self.unoptimized.stats()
    }

    /// Statistics of the final output.
    pub fn optimized_stats(&self) -> CircuitStats {
        self.optimized.stats()
    }

    /// Percent cost decrease achieved by optimization under a cost model
    /// (the quantity reported in the paper's Tables 4, 6 and 8).
    pub fn percent_cost_decrease(&self, cost: &dyn CostModel) -> f64 {
        let pre = cost.circuit_cost(&self.unoptimized);
        let post = cost.circuit_cost(&self.optimized);
        if pre == 0.0 {
            0.0
        } else {
            (pre - post) / pre * 100.0
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;
    use qsyn_gate::Gate;

    fn toffoli_spec() -> Circuit {
        let mut c = Circuit::new(3).with_name("tof");
        c.push(Gate::toffoli(0, 1, 2));
        c
    }

    #[test]
    fn compiles_toffoli_to_every_ibm_device() {
        for d in devices::ibm_devices() {
            let r = Compiler::new(d.clone()).compile(&toffoli_spec()).unwrap();
            assert!(r.optimized.is_technology_ready(), "{}", d.name());
            assert_eq!(r.verified, Some(true));
            // Every CNOT in the output is a legal placement.
            for g in r.optimized.gates() {
                if let Gate::Cx { control, target } = g {
                    assert!(d.has_coupling(*control, *target), "{} {g}", d.name());
                }
            }
        }
    }

    #[test]
    fn optimization_never_hurts_cost() {
        let cost = TransmonCost::default();
        for d in devices::ibm_devices() {
            let with = Compiler::new(d.clone()).compile(&toffoli_spec()).unwrap();
            let without = Compiler::new(d)
                .with_optimization(false)
                .compile(&toffoli_spec())
                .unwrap();
            assert!(
                cost.circuit_cost(&with.optimized) <= cost.circuit_cost(&without.optimized)
            );
        }
    }

    #[test]
    fn too_wide_reports_na() {
        let mut c = Circuit::new(6);
        c.push(Gate::x(5));
        let err = Compiler::new(devices::ibmqx2()).compile(&c).unwrap_err();
        assert_eq!(
            err,
            CompileError::TooWide {
                needed: 6,
                available: 5
            }
        );
    }

    #[test]
    fn t5_on_five_qubit_device_is_na() {
        // Table 5: 4gt12-v0_88 (largest gate T5) is N/A on ibmqx2/ibmqx4
        // even though widths match, because the decomposition needs an
        // ancilla line.
        let mut c = Circuit::new(5);
        c.push(Gate::mct(vec![0, 1, 2, 3], 4));
        let err = Compiler::new(devices::ibmqx2()).compile(&c).unwrap_err();
        assert_eq!(err, CompileError::NoAncilla { controls: 4 });
        // The same gate compiles fine on a 16-qubit device.
        let r = Compiler::new(devices::ibmqx5()).compile(&c).unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    fn simulator_mapping_leaves_clifford_t_unchanged() {
        // Paper Section 5: benchmarks mapped to the simulator match their
        // technology-independent form; optimization finds nothing to cut.
        let mut c = Circuit::new(3);
        c.push(Gate::h(2));
        c.push(Gate::cx(0, 2));
        c.push(Gate::tdg(2));
        c.push(Gate::cx(1, 2));
        c.push(Gate::t(2));
        let r = Compiler::new(Device::simulator(3)).compile(&c).unwrap();
        assert_eq!(r.optimized.gates(), c.gates());
    }

    #[test]
    fn greedy_placement_compiles_and_verifies() {
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 3));
        c.push(Gate::cx(0, 3));
        let r = Compiler::new(devices::ibmqx5())
            .with_placement(PlacementStrategy::Greedy)
            .compile(&c)
            .unwrap();
        assert_eq!(r.verified, Some(true));
        assert!(!r.placement.is_identity() || r.placement.is_identity());
    }

    #[test]
    fn annealed_placement_compiles_and_verifies() {
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 3));
        c.push(Gate::cx(0, 3));
        c.push(Gate::cx(3, 2));
        let r = Compiler::new(devices::ibmqx5())
            .with_placement(PlacementStrategy::Annealed)
            .compile(&c)
            .unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    fn verification_modes_agree() {
        let spec = toffoli_spec();
        for v in [Verification::Canonical, Verification::Miter, Verification::Auto] {
            let r = Compiler::new(devices::ibmqx4())
                .with_verification(v)
                .compile(&spec)
                .unwrap();
            assert_eq!(r.verified, Some(true));
        }
        let r = Compiler::new(devices::ibmqx4())
            .with_verification(Verification::None)
            .compile(&spec)
            .unwrap();
        assert_eq!(r.verified, None);
    }

    #[test]
    fn percent_cost_decrease_is_consistent() {
        let cost = TransmonCost::default();
        let r = Compiler::new(devices::ibmqx3()).compile(&toffoli_spec()).unwrap();
        let pct = r.percent_cost_decrease(&cost);
        assert!((0.0..=100.0).contains(&pct));
        let pre = cost.circuit_cost(&r.unoptimized);
        let post = cost.circuit_cost(&r.optimized);
        assert!(((pre - post) / pre * 100.0 - pct).abs() < 1e-12);
    }

    #[test]
    fn output_qasm_is_parseable_and_equivalent() {
        let r = Compiler::new(devices::ibmqx2()).compile(&toffoli_spec()).unwrap();
        let qasm = r.optimized.to_qasm().unwrap();
        let parsed = Circuit::from_qasm(&qasm).unwrap();
        assert!(qsyn_qmdd::circuits_equal(&r.optimized, &parsed));
    }

    #[test]
    fn custom_cost_model_is_used() {
        let r = Compiler::new(devices::ibmqx2())
            .with_cost_model(Box::new(qsyn_arch::VolumeCost))
            .compile(&toffoli_spec())
            .unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    fn metrics_table_summarizes_all_stages() {
        let r = Compiler::new(devices::ibmqx3()).compile(&toffoli_spec()).unwrap();
        let text = r.metrics().render_table();
        for pass in Pass::FIG2_ORDER {
            assert!(text.contains(&pass.to_string()), "missing {pass} in:\n{text}");
        }
        assert!(r.metrics().verified == Some(true));
    }

    #[test]
    fn metrics_cover_fig2_pipeline_in_order() {
        let r = Compiler::new(devices::ibmqx4()).compile(&toffoli_spec()).unwrap();
        let m = r.metrics();
        let order: Vec<Pass> = m.events.iter().map(|e| e.pass).collect();
        assert_eq!(order, Pass::FIG2_ORDER);
        assert_eq!(m.circuit, "tof");
        assert_eq!(m.device, "ibmqx4");
        assert_eq!(m.cost_model, "transmon-eqn2");
        assert_eq!(m.verified, Some(true));
        assert!(m.total_seconds > 0.0);
        // Events chain: each pass's input is the previous pass's output.
        for w in m.events.windows(2) {
            assert_eq!(w[0].output, w[1].input, "{} -> {}", w[0].pass, w[1].pass);
        }
        // The verify pass reports the QMDD package counters.
        let verify = m.pass(Pass::Verify).unwrap();
        assert!(verify.counter("peak_nodes").unwrap() > 0.0);
        assert!(verify.counter("unique_nodes").unwrap() > 0.0);
        assert!(verify.counter("cache_hit_rate").is_some());
        assert!(verify.counter("cache_evictions").is_some());
        assert!(verify.counter("gc_runs").is_some());
        assert!(verify.counter("nodes_reclaimed").is_some());
    }

    #[test]
    fn job_id_stamps_every_event() {
        let r = Compiler::new(devices::ibmqx4())
            .with_job_id(7)
            .compile(&toffoli_spec())
            .unwrap();
        assert!(!r.metrics().events.is_empty());
        assert!(r.metrics().events.iter().all(|e| e.job == Some(7)));
        let plain = Compiler::new(devices::ibmqx4()).compile(&toffoli_spec()).unwrap();
        assert!(plain.metrics().events.iter().all(|e| e.job.is_none()));
    }

    #[test]
    fn metrics_pct_matches_result_pct() {
        let cost = TransmonCost::default();
        let r = Compiler::new(devices::ibmqx3()).compile(&toffoli_spec()).unwrap();
        let pct = r.metrics().percent_cost_decrease();
        assert!((pct - r.percent_cost_decrease(&cost)).abs() < 1e-9);
    }

    #[test]
    fn disabled_optimization_still_emits_its_event() {
        let r = Compiler::new(devices::ibmqx4())
            .with_optimization(false)
            .compile(&toffoli_spec())
            .unwrap();
        let opt = r.metrics().pass(Pass::Optimize).unwrap();
        assert_eq!(opt.counter("enabled"), Some(0.0));
        assert_eq!(opt.input, opt.output);
        assert_eq!(r.metrics().percent_cost_decrease(), 0.0);
    }

    #[test]
    fn disabled_verification_omits_the_verify_event() {
        let r = Compiler::new(devices::ibmqx4())
            .with_verification(Verification::None)
            .compile(&toffoli_spec())
            .unwrap();
        assert!(r.metrics().pass(Pass::Verify).is_none());
        assert_eq!(r.metrics().events.len(), 4);
        assert_eq!(r.metrics().verified, None);
    }

    #[test]
    fn optimization_enum_accepts_all_call_styles() {
        let spec = toffoli_spec();
        let cfg = OptimizeConfig {
            cancel_identities: true,
            rewrite_identities: false,
        };
        let a = Compiler::new(devices::ibmqx4())
            .with_optimization(cfg)
            .compile(&spec)
            .unwrap();
        let b = Compiler::new(devices::ibmqx4())
            .with_optimization(Optimization::Enabled(cfg))
            .compile(&spec)
            .unwrap();
        let c = Compiler::new(devices::ibmqx4())
            .with_optimization(Some(cfg))
            .compile(&spec)
            .unwrap();
        assert_eq!(a.optimized, b.optimized);
        assert_eq!(a.optimized, c.optimized);
        let off = Compiler::new(devices::ibmqx4())
            .with_optimization(Optimization::Disabled)
            .compile(&spec)
            .unwrap();
        assert_eq!(off.optimized, off.unoptimized);
    }

    #[test]
    fn trace_sink_receives_the_same_events_as_metrics() {
        let sink = Arc::new(qsyn_trace::TableSink::new());
        let r = Compiler::new(devices::ibmqx4())
            .with_trace(sink.clone())
            .compile(&toffoli_spec())
            .unwrap();
        assert_eq!(sink.events(), r.metrics().events);
    }

    #[test]
    fn null_sink_results_match_untraced_results() {
        let traced = Compiler::new(devices::ibmqx4())
            .with_trace(Arc::new(qsyn_trace::NullSink))
            .compile(&toffoli_spec())
            .unwrap();
        let plain = Compiler::new(devices::ibmqx4()).compile(&toffoli_spec()).unwrap();
        assert_eq!(traced.optimized, plain.optimized);
        assert_eq!(traced.unoptimized, plain.unoptimized);
        assert_eq!(traced.placed, plain.placed);
        assert_eq!(traced.verified, plain.verified);
    }

    #[test]
    fn persistent_layout_strategy_compiles_and_verifies() {
        let mut spec = Circuit::new(5);
        spec.push(Gate::toffoli(0, 2, 4));
        spec.push(Gate::cx(4, 0));
        spec.push(Gate::cx(0, 4));
        for device in devices::ibm_devices() {
            let r = Compiler::new(device.clone())
                .with_swap_strategy(SwapStrategy::PersistentLayout)
                .compile(&spec)
                .unwrap();
            assert_eq!(r.verified, Some(true), "{}", device.name());
            for g in r.optimized.gates() {
                if let Gate::Cx { control, target } = g {
                    assert!(device.has_coupling(*control, *target));
                }
            }
        }
    }

    #[test]
    fn relative_phase_strategy_compiles_verified_with_fewer_t() {
        let mut spec = Circuit::new(5);
        spec.push(Gate::mct(vec![0, 1, 2, 3], 4));
        let exact = Compiler::new(devices::ibmqx5()).compile(&spec).unwrap();
        let rp = Compiler::new(devices::ibmqx5())
            .with_decompose_strategy(DecomposeStrategy::RelativePhase)
            .compile(&spec)
            .unwrap();
        assert_eq!(exact.verified, Some(true));
        assert_eq!(rp.verified, Some(true), "relative phases must cancel");
        assert!(
            rp.optimized.stats().t_count < exact.optimized.stats().t_count,
            "{} vs {}",
            rp.optimized.stats().t_count,
            exact.optimized.stats().t_count
        );
    }

    #[test]
    fn compiles_to_cz_native_library() {
        // The paper's modularity claim: add a library with a different
        // native two-qubit gate and the same pipeline targets it.
        use qsyn_arch::TwoQubitNative;
        let d = qsyn_arch::devices::ring(5).with_native(TwoQubitNative::Cz);
        let r = Compiler::new(d.clone()).compile(&toffoli_spec()).unwrap();
        assert_eq!(r.verified, Some(true));
        assert!(d.can_execute(&r.optimized));
        assert!(
            r.optimized
                .gates()
                .iter()
                .any(|g| matches!(g, Gate::Cz { .. })),
            "CZ library output uses CZ"
        );
        assert!(
            !r.optimized
                .gates()
                .iter()
                .any(|g| matches!(g, Gate::Cx { .. })),
            "no CNOT on a CZ device"
        );
    }

    #[test]
    fn cache_modes_produce_identical_circuits() {
        // Tables (the default) must be a transparent acceleration: same
        // bytes out as the legacy per-gate searches.
        let mut spec = Circuit::new(5).with_name("cache-modes");
        spec.push(Gate::mct(vec![0, 1, 2], 4));
        spec.push(Gate::cx(0, 4));
        for d in devices::ibm_devices() {
            let off = Compiler::new(d.clone())
                .with_cache(CacheMode::Off)
                .compile(&spec)
                .unwrap();
            let tables = Compiler::new(d.clone()).compile(&spec).unwrap();
            assert_eq!(off.optimized.gates(), tables.optimized.gates(), "{}", d.name());
            assert_eq!(off.unoptimized.gates(), tables.unoptimized.gates(), "{}", d.name());
        }
    }

    #[test]
    fn compile_cache_replays_identical_results() {
        // A circuit shape unique to this test, so the shared global cache
        // cannot be pre-populated by another test in this process.
        let mut spec = Circuit::new(5).with_name("memoized");
        spec.push(Gate::h(3));
        spec.push(Gate::toffoli(2, 3, 0));
        spec.push(Gate::cx(0, 1));
        spec.push(Gate::tdg(4));
        let compiler = Compiler::new(devices::ibmqx5()).with_cache(CacheMode::Mem);
        let cold = compiler.compile(&spec).unwrap();
        assert!(!cold.metrics().cache_hit);
        let warm = compiler.compile(&spec).unwrap();
        assert!(warm.metrics().cache_hit);
        assert_eq!(cold.optimized, warm.optimized);
        assert_eq!(cold.unoptimized, warm.unoptimized);
        assert_eq!(cold.placed, warm.placed);
        assert_eq!(cold.verified, warm.verified);
        assert_eq!(cold.metrics().verdict, warm.metrics().verdict);
        // Every replayed event carries the cache-hit marker; fresh ones
        // don't.
        assert!(warm
            .metrics()
            .events
            .iter()
            .all(|e| e.counter("cache_hit") == Some(1.0)));
        assert!(cold
            .metrics()
            .events
            .iter()
            .all(|e| e.counter("cache_hit").is_none()));
    }

    #[test]
    fn compile_cache_replays_through_the_trace_sink() {
        let mut spec = Circuit::new(4).with_name("traced-replay");
        spec.push(Gate::toffoli(1, 3, 2));
        spec.push(Gate::t(0));
        let sink = Arc::new(qsyn_trace::TableSink::new());
        let compiler = Compiler::new(devices::ibmqx4())
            .with_cache(CacheMode::Mem)
            .with_trace(sink.clone())
            .with_job_id(3);
        let _ = compiler.compile(&spec).unwrap();
        let warm = compiler.compile(&spec).unwrap();
        // Both runs streamed their events (fresh + replayed).
        assert_eq!(sink.events().len(), 2 * warm.metrics().events.len());
        assert!(sink.events().iter().all(|e| e.job == Some(3)));
    }

    #[test]
    fn debug_format_names_parts() {
        let c = Compiler::new(devices::ibmqx2());
        let text = format!("{c:?}");
        assert!(text.contains("ibmqx2"));
        assert!(text.contains("transmon-eqn2"));
    }

    #[test]
    fn generous_budget_matches_unbudgeted_compile() {
        let budget = CompileBudget::default()
            .with_deadline(std::time::Duration::from_secs(600))
            .with_node_budget(1 << 22)
            .with_max_optimize_rounds(10_000)
            .with_max_route_swaps(1_000_000);
        let bounded = Compiler::new(devices::ibmqx4())
            .with_budget(budget)
            .compile(&toffoli_spec())
            .unwrap();
        let free = Compiler::new(devices::ibmqx4()).compile(&toffoli_spec()).unwrap();
        assert_eq!(bounded.optimized, free.optimized);
        assert_eq!(bounded.verified, Some(true));
        assert_eq!(
            *bounded.verdict(),
            qsyn_trace::Verdict::Verified {
                method: "canonical".into()
            }
        );
        let verify = bounded.metrics().pass(Pass::Verify).unwrap();
        assert_eq!(verify.counter("ladder_rung"), Some(1.0));
        assert_eq!(verify.counter("unverified"), Some(0.0));
    }

    #[test]
    fn tiny_node_budget_degrades_to_explicit_unverified() {
        // A budget too small even for the identity QMDD: every ladder rung
        // exhausts, and the compile still succeeds with a loud verdict.
        let r = Compiler::new(devices::ibmqx4())
            .with_budget(CompileBudget::default().with_node_budget(2))
            .compile(&toffoli_spec())
            .unwrap();
        assert_eq!(r.verified, None);
        assert!(r.verdict().is_unverified(), "{:?}", r.verdict());
        let verify = r.metrics().pass(Pass::Verify).unwrap();
        assert_eq!(verify.counter("unverified"), Some(1.0));
        assert_eq!(verify.counter("ladder_rungs_tried"), Some(3.0));
        assert_eq!(r.metrics().verdict, *r.verdict());
    }

    #[test]
    fn tiny_node_budget_in_strict_mode_is_a_hard_error() {
        let budget = CompileBudget::default()
            .with_node_budget(2)
            .with_verify_mode(VerifyMode::Strict);
        let err = Compiler::new(devices::ibmqx4())
            .with_budget(budget)
            .compile(&toffoli_spec())
            .unwrap_err();
        match err {
            CompileError::BudgetExceeded {
                pass,
                resource,
                limit,
                used,
            } => {
                assert_eq!(pass, Pass::Verify);
                assert_eq!(resource, BudgetResource::QmddNodes);
                assert_eq!(limit, 2);
                assert!(used > 2);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn zero_deadline_trips_before_the_first_pass() {
        let err = Compiler::new(devices::ibmqx4())
            .with_budget(CompileBudget::default().with_deadline(std::time::Duration::ZERO))
            .compile(&toffoli_spec())
            .unwrap_err();
        assert!(
            matches!(
                err,
                CompileError::BudgetExceeded {
                    pass: Pass::Place,
                    resource: BudgetResource::WallClock,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn optimize_round_cap_degrades_gracefully() {
        let r = Compiler::new(devices::ibmqx3())
            .with_budget(CompileBudget::default().with_max_optimize_rounds(0))
            .compile(&toffoli_spec())
            .unwrap();
        // Zero rounds: nothing optimized, but the compile still verifies.
        assert_eq!(r.optimized, r.unoptimized);
        assert_eq!(r.verified, Some(true));
        let opt = r.metrics().pass(Pass::Optimize).unwrap();
        assert_eq!(opt.counter("capped"), Some(1.0));
        assert_eq!(opt.counter("rounds"), Some(0.0));
    }

    #[test]
    fn route_swap_cap_surfaces_through_compile() {
        let mut c = Circuit::new(16);
        c.push(Gate::cx(5, 10));
        let err = Compiler::new(devices::ibmqx3())
            .with_budget(CompileBudget::default().with_max_route_swaps(1))
            .compile(&c)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CompileError::BudgetExceeded {
                    pass: Pass::Route,
                    resource: BudgetResource::RouteSwaps,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn disconnected_device_surfaces_route_not_found() {
        // Regression: a coupling map with two components (0-1 and 2-3) has
        // no SWAP chain joining them. A CNOT across the cut must come back
        // as a structured `RouteNotFound`, not a panic or a hang.
        let device = qsyn_arch::Device::from_coupling_map(
            "split",
            4,
            &[(0, &[1][..]), (2, &[3][..])],
        );
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 2));
        let err = Compiler::new(device)
            .with_verification(Verification::None)
            .compile(&c)
            .unwrap_err();
        assert!(
            matches!(err, CompileError::RouteNotFound { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn miter_mode_ladder_names_its_method() {
        // Wide device forces Verification::Miter under Auto.
        let mut spec = Circuit::new(20);
        spec.push(Gate::toffoli(0, 1, 2));
        let r = Compiler::new(devices::qc96()).compile(&spec).unwrap();
        assert_eq!(
            *r.verdict(),
            qsyn_trace::Verdict::Verified {
                method: "miter".into()
            }
        );
    }

    #[test]
    fn streaming_matches_the_batch_routed_circuit() {
        // With optimization off, CTR routes every gate independently, so
        // window boundaries cannot change the output: the streamed windows
        // concatenate to exactly the batch compiler's unoptimized mapping.
        let mut spec = Circuit::new(5).with_name("stream");
        spec.push(Gate::toffoli(0, 2, 4));
        spec.push(Gate::cx(4, 0));
        spec.push(Gate::h(1));
        spec.push(Gate::cx(0, 4));
        spec.push(Gate::t(2));
        let compiler = Compiler::new(devices::ibmqx4()).with_optimization(false);
        let batch = compiler.compile(&spec).unwrap();
        for window in [1, 2, 3, 100] {
            let mut streamed = Circuit::new(5);
            let summary = compiler
                .compile_stream(5, window, spec.gates().iter().cloned(), |g| {
                    streamed.push(g.clone())
                })
                .unwrap();
            assert_eq!(
                streamed.gates(),
                batch.unoptimized.gates(),
                "window={window}"
            );
            assert_eq!(summary.gates_in, spec.gates().len());
            assert_eq!(summary.gates_out, streamed.gates().len());
            assert_eq!(summary.windows, spec.gates().len().div_ceil(window));
            assert_eq!(summary.verified_windows, summary.windows);
            assert_eq!(summary.unverified_windows, 0);
            assert_eq!(
                summary.verdict,
                Verdict::Verified {
                    method: "windowed-miter".into()
                }
            );
            assert!(summary.peak_resident_gates <= streamed.gates().len());
            if window == 1 {
                // Bounded residency: a one-gate window never holds the
                // whole output.
                assert!(summary.peak_resident_gates < streamed.gates().len());
            }
            assert!(qsyn_qmdd::circuits_equal(&spec, &streamed), "window={window}");
        }
    }

    #[test]
    fn streaming_stays_equivalent_with_optimization_on() {
        let mut spec = Circuit::new(4).with_name("stream-opt");
        spec.push(Gate::toffoli(0, 1, 3));
        spec.push(Gate::cx(3, 0));
        spec.push(Gate::cx(3, 0));
        spec.push(Gate::h(2));
        let mut streamed = Circuit::new(4);
        let summary = Compiler::new(devices::ibmqx5())
            .compile_stream(4, 2, spec.gates().iter().cloned(), |g| {
                streamed.push(g.clone())
            })
            .unwrap();
        assert!(qsyn_qmdd::circuits_equal(&spec, &streamed));
        assert_eq!(summary.unverified_windows, 0);
    }

    #[test]
    fn streaming_tiny_node_budget_degrades_or_aborts() {
        let spec = toffoli_spec();
        let degrade = Compiler::new(devices::ibmqx4())
            .with_budget(CompileBudget::default().with_node_budget(2))
            .compile_stream(3, 2, spec.gates().iter().cloned(), |_| {})
            .unwrap();
        assert!(degrade.unverified_windows > 0);
        assert!(degrade.verdict.is_unverified(), "{:?}", degrade.verdict);
        let strict = Compiler::new(devices::ibmqx4())
            .with_budget(
                CompileBudget::default()
                    .with_node_budget(2)
                    .with_verify_mode(VerifyMode::Strict),
            )
            .compile_stream(3, 2, spec.gates().iter().cloned(), |_| {});
        assert!(
            matches!(
                strict,
                Err(CompileError::BudgetExceeded {
                    pass: Pass::Verify,
                    resource: BudgetResource::QmddNodes,
                    ..
                })
            ),
            "{strict:?}"
        );
    }

    #[test]
    fn streaming_emits_the_aggregate_route_event() {
        let mut spec = Circuit::new(5);
        spec.push(Gate::cx(0, 4));
        spec.push(Gate::cx(4, 0));
        let sink = Arc::new(qsyn_trace::TableSink::new());
        let summary = Compiler::new(devices::ibmqx4())
            .with_trace(sink.clone())
            .with_job_id(11)
            .with_budget(CompileBudget::default().with_max_route_swaps(64))
            .compile_stream(5, 1, spec.gates().iter().cloned(), |_| {})
            .unwrap();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.pass, Pass::Route);
        assert_eq!(e.job, Some(11));
        assert_eq!(e.counter("streaming"), Some(1.0));
        assert_eq!(e.counter("windows"), Some(summary.windows as f64));
        assert_eq!(e.counter("window_gates_cap"), Some(1.0));
        assert_eq!(e.counter("window_swap_cap"), Some(64.0));
        assert_eq!(
            e.counter("max_window_swaps"),
            Some(summary.max_window_swaps as f64)
        );
        assert_eq!(
            e.counter("verified_windows"),
            Some(summary.verified_windows as f64)
        );
        assert_eq!(e.counter("unverified_windows"), Some(0.0));
        assert!(e.counter("peak_resident_gates").unwrap() >= 1.0);
        assert_eq!(
            e.counter("max_window_support"),
            Some(summary.max_window_support as f64)
        );
        assert_eq!(
            e.counter("verify_seconds_total"),
            Some(summary.verify_seconds_total)
        );
        assert_eq!(e.counter("verify_jobs"), Some(1.0));
        assert!(
            qsyn_trace::streaming::validate_streaming_route_event(e)
                .unwrap()
                .is_some(),
            "the emitted event must satisfy its own validator"
        );
    }

    /// A deterministic mixed H/CX/T stream for the verify-config tests.
    fn verify_test_stream(n: usize, gates: usize) -> Vec<Gate> {
        (0..gates)
            .map(|i| match i % 3 {
                0 => Gate::h((i * 5 + 1) % n),
                1 => Gate::cx((i * 7) % n, (i * 7 + 3) % n),
                _ => Gate::t((i * 11 + 2) % n),
            })
            .collect()
    }

    #[test]
    fn streaming_verify_configs_agree_bit_for_bit() {
        // Every StreamVerifyConfig is an observational no-op: support
        // restriction, batching, and pool parallelism must leave the
        // emitted gates, the verdict, and the window accounting
        // byte-identical to the full-register serial baseline.
        let gates = verify_test_stream(12, 36);
        let run = |cfg: StreamVerifyConfig| {
            let mut out = Circuit::new(16);
            let summary = Compiler::new(devices::ibmqx5())
                .with_stream_verify(cfg)
                .compile_stream(12, 6, gates.iter().cloned(), |g| out.push(g.clone()))
                .unwrap();
            (out.to_qasm().unwrap(), summary)
        };
        let (base_qasm, base) = run(StreamVerifyConfig::full_register_serial());
        assert_eq!(base.verify_jobs, 1);
        assert_eq!(
            base.verdict,
            Verdict::Verified {
                method: "windowed-miter".into()
            }
        );
        for cfg in [
            StreamVerifyConfig::default(),
            StreamVerifyConfig {
                jobs: 4,
                ..StreamVerifyConfig::default()
            },
            StreamVerifyConfig {
                jobs: 3,
                restricted: false,
                batch: 1,
            },
        ] {
            let (qasm, summary) = run(cfg);
            assert_eq!(qasm, base_qasm, "{cfg:?} changed the output");
            assert_eq!(summary.verdict, base.verdict, "{cfg:?}");
            assert_eq!(summary.windows, base.windows, "{cfg:?}");
            assert_eq!(summary.verified_windows, base.verified_windows, "{cfg:?}");
            assert_eq!(summary.unverified_windows, 0, "{cfg:?}");
            // Support is a property of the windows, not of the config.
            assert_eq!(summary.max_window_support, base.max_window_support, "{cfg:?}");
            assert_eq!(summary.verify_jobs, cfg.jobs.max(1), "{cfg:?}");
        }
        // The stream touches several-but-not-all device lines per window.
        assert!(base.max_window_support >= 2);
        assert!(base.max_window_support <= 12);
        assert!(base.verify_seconds_total > 0.0);
        assert!(base.verify_p95_seconds > 0.0);
    }

    #[test]
    fn streaming_parallel_degrade_counts_unverified_windows() {
        // Budget latching still degrades per window when verification
        // runs on the pool: the workers' shared counters merge into the
        // summary and the verdict stays Unverified.
        let spec = toffoli_spec();
        let degrade = Compiler::new(devices::ibmqx4())
            .with_stream_verify_jobs(4)
            .with_budget(CompileBudget::default().with_node_budget(2))
            .compile_stream(3, 2, spec.gates().iter().cloned(), |_| {})
            .unwrap();
        assert!(degrade.unverified_windows > 0);
        assert!(degrade.verdict.is_unverified(), "{:?}", degrade.verdict);
        assert_eq!(degrade.verify_jobs, 4);
    }

    #[test]
    fn streaming_strict_mode_verifies_inline_despite_jobs() {
        // Strict mode must abort before the failing window is emitted,
        // which only inline verification guarantees — so even with a
        // worker pool configured the budget error surfaces exactly as in
        // the serial path and the summary never materializes.
        let spec = toffoli_spec();
        let strict = Compiler::new(devices::ibmqx4())
            .with_stream_verify_jobs(4)
            .with_budget(
                CompileBudget::default()
                    .with_node_budget(2)
                    .with_verify_mode(VerifyMode::Strict),
            )
            .compile_stream(3, 2, spec.gates().iter().cloned(), |_| {});
        assert!(
            matches!(
                strict,
                Err(CompileError::BudgetExceeded {
                    pass: Pass::Verify,
                    resource: BudgetResource::QmddNodes,
                    ..
                })
            ),
            "{strict:?}"
        );
    }

    #[test]
    fn streaming_too_wide_is_rejected() {
        let err = Compiler::new(devices::ibmqx2())
            .compile_stream(6, 4, std::iter::empty(), |_| {})
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::TooWide {
                needed: 6,
                available: 5
            }
        );
    }

    #[cfg(feature = "fault-injection")]
    mod injection {
        use super::*;
        use crate::budget::{FaultKind, FaultSpec};

        #[test]
        fn injected_budget_fault_errors_at_the_named_pass() {
            let err = Compiler::new(devices::ibmqx4())
                .with_fault_injection(FaultSpec {
                    pass: Pass::Route,
                    kind: FaultKind::Budget,
                })
                .compile(&toffoli_spec())
                .unwrap_err();
            assert!(matches!(
                err,
                CompileError::BudgetExceeded {
                    pass: Pass::Route,
                    ..
                }
            ));
        }

        #[test]
        fn injected_verify_fail_errors() {
            let err = Compiler::new(devices::ibmqx4())
                .with_fault_injection(FaultSpec {
                    pass: Pass::Verify,
                    kind: FaultKind::VerifyFail,
                })
                .compile(&toffoli_spec())
                .unwrap_err();
            assert_eq!(err, CompileError::VerificationFailed);
        }

        #[test]
        fn injected_panic_panics() {
            let result = std::panic::catch_unwind(|| {
                Compiler::new(devices::ibmqx4())
                    .with_fault_injection(FaultSpec {
                        pass: Pass::Decompose,
                        kind: FaultKind::Panic,
                    })
                    .compile(&toffoli_spec())
            });
            assert!(result.is_err());
        }
    }
}
