//! The end-to-end technology-dependent synthesis pipeline (paper Fig. 2,
//! back-end).
//!
//! ```text
//! input circuit (technology-independent)
//!   -> placement onto device qubits          (identity, as in the paper,
//!                                             or greedy — future-work ext.)
//!   -> generalized-Toffoli decomposition     (Barenco)
//!   -> Toffoli/CZ/SWAP -> Clifford+T + CNOT  (Nielsen & Chuang)
//!   -> CNOT legalization                     (Fig. 6 reversal, CTR reroute)
//!   -> local optimization                    (until the cost function
//!                                             stops improving)
//!   -> QMDD formal verification              (output == specification)
//! ```

use crate::decompose::{decompose_circuit_with, DecomposeStrategy};
use crate::error::CompileError;
use crate::optimize::{optimize_traced, OptimizeConfig, OptimizeCounters};
use crate::place::{place, Placement, PlacementStrategy};
use crate::remap::{route_circuit_persistent_traced, SwapStrategy};
use crate::route::{route_circuit_traced, RoutingObjective};
use qsyn_arch::{CostModel, Device, TransmonCost};
use qsyn_circuit::{Circuit, CircuitStats};
use qsyn_qmdd::{equivalent, equivalent_miter};
use qsyn_trace::{CompileMetrics, Pass, PassEvent, Span, StageSnapshot, TraceSink};
use std::sync::Arc;

/// Which formal equivalence check to run on the compiled output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verification {
    /// Skip verification (for benchmarking the synthesis stages alone).
    None,
    /// Build both QMDDs and compare canonical root edges (the paper's
    /// method).
    Canonical,
    /// Interleaved miter `U_out * U_spec^dagger = I`; scales to very wide
    /// registers.
    Miter,
    /// Canonical up to 16 device qubits, miter beyond.
    #[default]
    Auto,
}

/// Whether (and how) the local optimization stage runs.
///
/// Converts from the values callers already have: `bool` (on/off with the
/// default families), an [`OptimizeConfig`] (ablation experiments), or an
/// `Option<OptimizeConfig>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimization {
    /// Skip the optimization stage entirely.
    Disabled,
    /// Run the configured optimization families until cost stops improving.
    Enabled(OptimizeConfig),
}

impl Optimization {
    fn default_enabled() -> Self {
        Optimization::Enabled(OptimizeConfig::default())
    }

    fn config(self) -> Option<OptimizeConfig> {
        match self {
            Optimization::Disabled => None,
            Optimization::Enabled(cfg) => Some(cfg),
        }
    }
}

impl Default for Optimization {
    fn default() -> Self {
        Optimization::default_enabled()
    }
}

impl From<bool> for Optimization {
    fn from(on: bool) -> Self {
        if on {
            Optimization::default_enabled()
        } else {
            Optimization::Disabled
        }
    }
}

impl From<OptimizeConfig> for Optimization {
    fn from(cfg: OptimizeConfig) -> Self {
        Optimization::Enabled(cfg)
    }
}

impl From<Option<OptimizeConfig>> for Optimization {
    fn from(cfg: Option<OptimizeConfig>) -> Self {
        cfg.map_or(Optimization::Disabled, Optimization::Enabled)
    }
}

/// The technology-dependent quantum logic synthesis tool.
///
/// # Examples
///
/// ```
/// use qsyn_arch::devices;
/// use qsyn_circuit::Circuit;
/// use qsyn_core::Compiler;
/// use qsyn_gate::Gate;
///
/// let mut spec = Circuit::new(3);
/// spec.push(Gate::toffoli(0, 1, 2));
///
/// let compiler = Compiler::new(devices::ibmqx2());
/// let result = compiler.compile(&spec)?;
/// assert!(result.optimized.is_technology_ready());
/// assert_eq!(result.verified, Some(true));
/// # Ok::<(), qsyn_core::CompileError>(())
/// ```
pub struct Compiler {
    device: Device,
    cost: Box<dyn CostModel>,
    placement: PlacementStrategy,
    routing: RoutingObjective,
    swaps: SwapStrategy,
    decompose: DecomposeStrategy,
    verification: Verification,
    optimization: Optimization,
    trace: Option<Arc<dyn TraceSink>>,
    job: Option<u64>,
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiler")
            .field("device", &self.device.name())
            .field("cost", &self.cost.name())
            .field("placement", &self.placement)
            .field("verification", &self.verification)
            .field("optimize", &self.optimization)
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

impl Compiler {
    /// Creates a compiler for a device with the paper's defaults: Eqn. 2
    /// cost model, identity placement, optimization on, automatic
    /// verification.
    pub fn new(device: Device) -> Self {
        Compiler {
            device,
            cost: Box::new(TransmonCost::default()),
            placement: PlacementStrategy::Identity,
            routing: RoutingObjective::FewestSwaps,
            swaps: SwapStrategy::ReturnControl,
            decompose: DecomposeStrategy::Exact,
            verification: Verification::Auto,
            optimization: Optimization::default_enabled(),
            trace: None,
            job: None,
        }
    }

    /// Selects the SWAP strategy: the paper's swap-out/swap-back CTR or
    /// the persistent-layout router with one final restoration network.
    pub fn with_swap_strategy(mut self, swaps: SwapStrategy) -> Self {
        self.swaps = swaps;
        self
    }

    /// Selects how generalized Toffolis are lowered (exact Clifford+T
    /// chains, as in the paper, or paired relative-phase chains with about
    /// half the T-count).
    pub fn with_decompose_strategy(mut self, strategy: DecomposeStrategy) -> Self {
        self.decompose = strategy;
        self
    }

    /// Selects the CTR routing objective (fewest swaps, as in the paper,
    /// or highest fidelity using device characterization data).
    pub fn with_routing(mut self, routing: RoutingObjective) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the cost model (the tool accepts "any arbitrary quantum
    /// cost function").
    pub fn with_cost_model(mut self, cost: Box<dyn CostModel>) -> Self {
        self.cost = cost;
        self
    }

    /// Selects the placement strategy.
    pub fn with_placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Selects the verification mode.
    pub fn with_verification(mut self, verification: Verification) -> Self {
        self.verification = verification;
        self
    }

    /// Configures the optimization stage. Accepts a `bool` (on/off with
    /// the default families), an [`OptimizeConfig`] (ablation experiments),
    /// an `Option<OptimizeConfig>`, or an [`Optimization`] directly.
    pub fn with_optimization(mut self, optimization: impl Into<Optimization>) -> Self {
        self.optimization = optimization.into();
        self
    }

    /// Restricts which optimization families run (ablation experiments).
    #[deprecated(since = "0.1.0", note = "use `with_optimization(config)` instead")]
    pub fn with_optimize_config(self, config: OptimizeConfig) -> Self {
        self.with_optimization(config)
    }

    /// Streams every pass event of [`Compiler::compile`] to a sink as it
    /// completes (per-pass metrics are always collected either way — see
    /// [`CompileResult::metrics`]; the sink only adds live output).
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Stamps every [`PassEvent`] this compiler emits with a job id.
    ///
    /// Parallel sweep drivers give each (circuit, device) job a distinct id
    /// so that events from concurrently running compilations, interleaved
    /// in one JSONL stream, can be grouped back into per-job Fig. 2 pass
    /// sequences (see `qsyn check-trace`).
    pub fn with_job_id(mut self, job: u64) -> Self {
        self.job = Some(job);
        self
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &dyn CostModel {
        self.cost.as_ref()
    }

    /// Runs the full back-end pipeline on a technology-independent circuit.
    ///
    /// # Errors
    ///
    /// * [`CompileError::TooWide`] — more lines than device qubits (the
    ///   paper's `N/A` case);
    /// * [`CompileError::NoAncilla`] — a generalized Toffoli cannot borrow
    ///   a line (also reported `N/A` in the paper);
    /// * [`CompileError::RouteNotFound`] — disconnected coupling map;
    /// * [`CompileError::VerificationFailed`] — the built-in QMDD check
    ///   rejected the output (never expected; would indicate a compiler
    ///   defect).
    pub fn compile(&self, input: &Circuit) -> Result<CompileResult, CompileError> {
        if input.n_qubits() > self.device.n_qubits() {
            return Err(CompileError::TooWide {
                needed: input.n_qubits(),
                available: self.device.n_qubits(),
            });
        }
        let started = std::time::Instant::now();
        let mut events: Vec<PassEvent> = Vec::new();
        let mut record = |mut e: PassEvent| {
            e.job = self.job;
            if let Some(sink) = &self.trace {
                sink.record(&e);
            }
            events.push(e);
        };

        // Placement.
        let snap_input = StageSnapshot::of(input);
        let span = Span::begin(Pass::Place);
        let placement = place(input, &self.device, self.placement);
        let mut placed = placement.apply(input, &self.device);
        let base_name = input.name().unwrap_or("circuit").to_string();
        placed.set_name(base_name.clone());
        let snap_placed = StageSnapshot::of(&placed);
        record(self.finish(span, snap_input, snap_placed, |s| {
            s.counter("identity_placement", f64::from(u8::from(placement.is_identity())));
        }));

        // Decomposition (Barenco + Clifford+T lowering).
        let span = Span::begin(Pass::Decompose);
        let decomposed = decompose_circuit_with(&placed, Some(&self.device), self.decompose)?;
        let snap_decomposed = StageSnapshot::of(&decomposed);
        record(self.finish(span, snap_placed, snap_decomposed, |_| {}));

        // Routing against the coupling map.
        let span = Span::begin(Pass::Route);
        let (mut unoptimized, swaps_inserted, gates_rerouted, restoration) = match self.swaps {
            SwapStrategy::ReturnControl => {
                let (c, k) = route_circuit_traced(&decomposed, &self.device, self.routing)?;
                (c, k.swaps_inserted, k.gates_rerouted, 0)
            }
            SwapStrategy::PersistentLayout => {
                let (c, k) =
                    route_circuit_persistent_traced(&decomposed, &self.device, self.routing)?;
                (c, k.swaps_inserted, k.gates_rerouted, k.restoration_swaps)
            }
        };
        unoptimized.set_name(format!("{base_name}@{}", self.device.name()));
        let snap_routed = StageSnapshot::of(&unoptimized);
        record(self.finish(span, snap_decomposed, snap_routed, |s| {
            s.counter("swaps_inserted", swaps_inserted as f64);
            s.counter("gates_rerouted", gates_rerouted as f64);
            if self.swaps == SwapStrategy::PersistentLayout {
                s.counter("restoration_swaps", restoration as f64);
            }
        }));

        // Local optimization (an event is emitted even when disabled, so
        // the Fig. 2 event order is stable; `enabled` disambiguates).
        let span = Span::begin(Pass::Optimize);
        let (optimized, opt_counters) = match self.optimization.config() {
            Some(cfg) => {
                optimize_traced(&unoptimized, Some(&self.device), self.cost.as_ref(), cfg)
            }
            None => (unoptimized.clone(), OptimizeCounters::default()),
        };
        let snap_optimized = StageSnapshot::of(&optimized);
        record(self.finish(span, snap_routed, snap_optimized, |s| {
            s.counter(
                "enabled",
                f64::from(u8::from(self.optimization != Optimization::Disabled)),
            );
            s.counter("rounds", opt_counters.rounds as f64);
            s.counter("gates_removed", opt_counters.gates_removed as f64);
        }));

        // QMDD formal verification.
        let verified = match self.effective_verification() {
            Verification::None => None,
            mode => {
                let span = Span::begin(Pass::Verify);
                let report = match mode {
                    Verification::Canonical => equivalent(&placed, &optimized),
                    _ => equivalent_miter(&placed, &optimized),
                };
                record(self.finish(span, snap_optimized, snap_optimized, |s| {
                    s.counter("peak_nodes", report.peak_nodes as f64);
                    s.counter("unique_nodes", report.unique_nodes as f64);
                    s.counter("cache_lookups", report.cache_lookups as f64);
                    s.counter("cache_hit_rate", report.cache_hit_rate());
                    s.counter("cache_evictions", report.cache_evictions as f64);
                    s.counter("gc_runs", report.gc_runs as f64);
                    s.counter("nodes_reclaimed", report.nodes_reclaimed as f64);
                }));
                Some(report.equivalent)
            }
        };

        let metrics = CompileMetrics {
            circuit: base_name,
            device: self.device.name().to_string(),
            cost_model: self.cost.name().to_string(),
            events,
            verified,
            total_seconds: started.elapsed().as_secs_f64(),
        };
        if let Some(sink) = &self.trace {
            sink.flush();
        }
        if verified == Some(false) {
            return Err(CompileError::VerificationFailed);
        }

        Ok(CompileResult {
            placement,
            placed,
            unoptimized,
            optimized,
            verified,
            metrics,
        })
    }

    /// Prices the in/out snapshots under the active cost model, attaches
    /// counters, and closes the span.
    fn finish(
        &self,
        mut span: Span,
        input: StageSnapshot,
        output: StageSnapshot,
        counters: impl FnOnce(&mut Span),
    ) -> PassEvent {
        counters(&mut span);
        span.finish(
            input,
            output,
            self.cost.cost(&input.stats),
            self.cost.cost(&output.stats),
        )
    }

    fn effective_verification(&self) -> Verification {
        match self.verification {
            Verification::Auto => {
                if self.device.n_qubits() <= 16 {
                    Verification::Canonical
                } else {
                    Verification::Miter
                }
            }
            other => other,
        }
    }
}

/// Everything the pipeline produced for one input circuit.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// Logical-to-physical assignment used.
    pub placement: Placement,
    /// The specification relabeled onto device lines (what verification
    /// compares against).
    pub placed: Circuit,
    /// The mapped circuit before local optimization (the paper's
    /// "unoptimized mapping" table columns).
    pub unoptimized: Circuit,
    /// The final technology-dependent circuit (the "optimized mapping"
    /// columns; emit with [`qsyn_circuit::to_qasm`]).
    pub optimized: Circuit,
    /// `Some(true)` when a QMDD equivalence check ran and passed; `None`
    /// when verification was disabled.
    pub verified: Option<bool>,
    metrics: CompileMetrics,
}

impl CompileResult {
    /// Structured per-pass metrics of this compilation: one
    /// [`qsyn_trace::PassEvent`] per pipeline stage with wall-clock time,
    /// input/output statistics, cost movement under the compiler's cost
    /// model, and backend counters. Serializable via
    /// [`CompileMetrics::to_json`].
    pub fn metrics(&self) -> &CompileMetrics {
        &self.metrics
    }

    /// Statistics of the pre-optimization mapping.
    pub fn unoptimized_stats(&self) -> CircuitStats {
        self.unoptimized.stats()
    }

    /// Statistics of the final output.
    pub fn optimized_stats(&self) -> CircuitStats {
        self.optimized.stats()
    }

    /// Percent cost decrease achieved by optimization under a cost model
    /// (the quantity reported in the paper's Tables 4, 6 and 8).
    pub fn percent_cost_decrease(&self, cost: &dyn CostModel) -> f64 {
        let pre = cost.circuit_cost(&self.unoptimized);
        let post = cost.circuit_cost(&self.optimized);
        if pre == 0.0 {
            0.0
        } else {
            (pre - post) / pre * 100.0
        }
    }

    /// A human-readable markdown report of the compilation: specification
    /// vs. mapped vs. optimized metrics, depths, placement, and the
    /// verification verdict.
    #[deprecated(
        since = "0.1.0",
        note = "use `metrics()` for structured data or `metrics().render_table()` for text"
    )]
    pub fn report(&self, cost: &dyn CostModel) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compilation report for {:?}",
            self.placed.name().unwrap_or("circuit")
        );
        let _ = writeln!(out, "| stage | T | CNOT | gates | depth | T-depth | {} |", cost.name());
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        for (label, c) in [
            ("specification", &self.placed),
            ("mapped", &self.unoptimized),
            ("optimized", &self.optimized),
        ] {
            let s = c.stats();
            let _ = writeln!(
                out,
                "| {label} | {} | {} | {} | {} | {} | {:.2} |",
                s.t_count,
                s.cnot_count,
                s.volume,
                qsyn_circuit::depth(c),
                qsyn_circuit::t_depth(c),
                cost.circuit_cost(c)
            );
        }
        let _ = writeln!(
            out,
            "optimization recovered {:.1}% of the mapping cost",
            self.percent_cost_decrease(cost)
        );
        if !self.placement.is_identity() {
            let _ = writeln!(out, "placement: {:?}", self.placement.as_slice());
        }
        let _ = writeln!(
            out,
            "QMDD verification: {}",
            match self.verified {
                Some(true) => "passed",
                Some(false) => "FAILED",
                None => "skipped",
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;
    use qsyn_gate::Gate;

    fn toffoli_spec() -> Circuit {
        let mut c = Circuit::new(3).with_name("tof");
        c.push(Gate::toffoli(0, 1, 2));
        c
    }

    #[test]
    fn compiles_toffoli_to_every_ibm_device() {
        for d in devices::ibm_devices() {
            let r = Compiler::new(d.clone()).compile(&toffoli_spec()).unwrap();
            assert!(r.optimized.is_technology_ready(), "{}", d.name());
            assert_eq!(r.verified, Some(true));
            // Every CNOT in the output is a legal placement.
            for g in r.optimized.gates() {
                if let Gate::Cx { control, target } = g {
                    assert!(d.has_coupling(*control, *target), "{} {g}", d.name());
                }
            }
        }
    }

    #[test]
    fn optimization_never_hurts_cost() {
        let cost = TransmonCost::default();
        for d in devices::ibm_devices() {
            let with = Compiler::new(d.clone()).compile(&toffoli_spec()).unwrap();
            let without = Compiler::new(d)
                .with_optimization(false)
                .compile(&toffoli_spec())
                .unwrap();
            assert!(
                cost.circuit_cost(&with.optimized) <= cost.circuit_cost(&without.optimized)
            );
        }
    }

    #[test]
    fn too_wide_reports_na() {
        let mut c = Circuit::new(6);
        c.push(Gate::x(5));
        let err = Compiler::new(devices::ibmqx2()).compile(&c).unwrap_err();
        assert_eq!(
            err,
            CompileError::TooWide {
                needed: 6,
                available: 5
            }
        );
    }

    #[test]
    fn t5_on_five_qubit_device_is_na() {
        // Table 5: 4gt12-v0_88 (largest gate T5) is N/A on ibmqx2/ibmqx4
        // even though widths match, because the decomposition needs an
        // ancilla line.
        let mut c = Circuit::new(5);
        c.push(Gate::mct(vec![0, 1, 2, 3], 4));
        let err = Compiler::new(devices::ibmqx2()).compile(&c).unwrap_err();
        assert_eq!(err, CompileError::NoAncilla { controls: 4 });
        // The same gate compiles fine on a 16-qubit device.
        let r = Compiler::new(devices::ibmqx5()).compile(&c).unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    fn simulator_mapping_leaves_clifford_t_unchanged() {
        // Paper Section 5: benchmarks mapped to the simulator match their
        // technology-independent form; optimization finds nothing to cut.
        let mut c = Circuit::new(3);
        c.push(Gate::h(2));
        c.push(Gate::cx(0, 2));
        c.push(Gate::tdg(2));
        c.push(Gate::cx(1, 2));
        c.push(Gate::t(2));
        let r = Compiler::new(Device::simulator(3)).compile(&c).unwrap();
        assert_eq!(r.optimized.gates(), c.gates());
    }

    #[test]
    fn greedy_placement_compiles_and_verifies() {
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 3));
        c.push(Gate::cx(0, 3));
        let r = Compiler::new(devices::ibmqx5())
            .with_placement(PlacementStrategy::Greedy)
            .compile(&c)
            .unwrap();
        assert_eq!(r.verified, Some(true));
        assert!(!r.placement.is_identity() || r.placement.is_identity());
    }

    #[test]
    fn annealed_placement_compiles_and_verifies() {
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 3));
        c.push(Gate::cx(0, 3));
        c.push(Gate::cx(3, 2));
        let r = Compiler::new(devices::ibmqx5())
            .with_placement(PlacementStrategy::Annealed)
            .compile(&c)
            .unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    fn verification_modes_agree() {
        let spec = toffoli_spec();
        for v in [Verification::Canonical, Verification::Miter, Verification::Auto] {
            let r = Compiler::new(devices::ibmqx4())
                .with_verification(v)
                .compile(&spec)
                .unwrap();
            assert_eq!(r.verified, Some(true));
        }
        let r = Compiler::new(devices::ibmqx4())
            .with_verification(Verification::None)
            .compile(&spec)
            .unwrap();
        assert_eq!(r.verified, None);
    }

    #[test]
    fn percent_cost_decrease_is_consistent() {
        let cost = TransmonCost::default();
        let r = Compiler::new(devices::ibmqx3()).compile(&toffoli_spec()).unwrap();
        let pct = r.percent_cost_decrease(&cost);
        assert!((0.0..=100.0).contains(&pct));
        let pre = cost.circuit_cost(&r.unoptimized);
        let post = cost.circuit_cost(&r.optimized);
        assert!(((pre - post) / pre * 100.0 - pct).abs() < 1e-12);
    }

    #[test]
    fn output_qasm_is_parseable_and_equivalent() {
        let r = Compiler::new(devices::ibmqx2()).compile(&toffoli_spec()).unwrap();
        let qasm = r.optimized.to_qasm().unwrap();
        let parsed = Circuit::from_qasm(&qasm).unwrap();
        assert!(qsyn_qmdd::circuits_equal(&r.optimized, &parsed));
    }

    #[test]
    fn custom_cost_model_is_used() {
        let r = Compiler::new(devices::ibmqx2())
            .with_cost_model(Box::new(qsyn_arch::VolumeCost))
            .compile(&toffoli_spec())
            .unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    #[allow(deprecated)]
    fn report_summarizes_all_stages() {
        let r = Compiler::new(devices::ibmqx3()).compile(&toffoli_spec()).unwrap();
        let text = r.report(&TransmonCost::default());
        assert!(text.contains("specification"));
        assert!(text.contains("mapped"));
        assert!(text.contains("optimized"));
        assert!(text.contains("QMDD verification: passed"));
        assert!(text.contains("transmon-eqn2"));
    }

    #[test]
    fn metrics_cover_fig2_pipeline_in_order() {
        let r = Compiler::new(devices::ibmqx4()).compile(&toffoli_spec()).unwrap();
        let m = r.metrics();
        let order: Vec<Pass> = m.events.iter().map(|e| e.pass).collect();
        assert_eq!(order, Pass::FIG2_ORDER);
        assert_eq!(m.circuit, "tof");
        assert_eq!(m.device, "ibmqx4");
        assert_eq!(m.cost_model, "transmon-eqn2");
        assert_eq!(m.verified, Some(true));
        assert!(m.total_seconds > 0.0);
        // Events chain: each pass's input is the previous pass's output.
        for w in m.events.windows(2) {
            assert_eq!(w[0].output, w[1].input, "{} -> {}", w[0].pass, w[1].pass);
        }
        // The verify pass reports the QMDD package counters.
        let verify = m.pass(Pass::Verify).unwrap();
        assert!(verify.counter("peak_nodes").unwrap() > 0.0);
        assert!(verify.counter("unique_nodes").unwrap() > 0.0);
        assert!(verify.counter("cache_hit_rate").is_some());
        assert!(verify.counter("cache_evictions").is_some());
        assert!(verify.counter("gc_runs").is_some());
        assert!(verify.counter("nodes_reclaimed").is_some());
    }

    #[test]
    fn job_id_stamps_every_event() {
        let r = Compiler::new(devices::ibmqx4())
            .with_job_id(7)
            .compile(&toffoli_spec())
            .unwrap();
        assert!(!r.metrics().events.is_empty());
        assert!(r.metrics().events.iter().all(|e| e.job == Some(7)));
        let plain = Compiler::new(devices::ibmqx4()).compile(&toffoli_spec()).unwrap();
        assert!(plain.metrics().events.iter().all(|e| e.job.is_none()));
    }

    #[test]
    fn metrics_pct_matches_result_pct() {
        let cost = TransmonCost::default();
        let r = Compiler::new(devices::ibmqx3()).compile(&toffoli_spec()).unwrap();
        let pct = r.metrics().percent_cost_decrease();
        assert!((pct - r.percent_cost_decrease(&cost)).abs() < 1e-9);
    }

    #[test]
    fn disabled_optimization_still_emits_its_event() {
        let r = Compiler::new(devices::ibmqx4())
            .with_optimization(false)
            .compile(&toffoli_spec())
            .unwrap();
        let opt = r.metrics().pass(Pass::Optimize).unwrap();
        assert_eq!(opt.counter("enabled"), Some(0.0));
        assert_eq!(opt.input, opt.output);
        assert_eq!(r.metrics().percent_cost_decrease(), 0.0);
    }

    #[test]
    fn disabled_verification_omits_the_verify_event() {
        let r = Compiler::new(devices::ibmqx4())
            .with_verification(Verification::None)
            .compile(&toffoli_spec())
            .unwrap();
        assert!(r.metrics().pass(Pass::Verify).is_none());
        assert_eq!(r.metrics().events.len(), 4);
        assert_eq!(r.metrics().verified, None);
    }

    #[test]
    fn optimization_enum_accepts_all_call_styles() {
        let spec = toffoli_spec();
        let cfg = OptimizeConfig {
            cancel_identities: true,
            rewrite_identities: false,
        };
        let a = Compiler::new(devices::ibmqx4())
            .with_optimization(cfg)
            .compile(&spec)
            .unwrap();
        #[allow(deprecated)]
        let b = Compiler::new(devices::ibmqx4())
            .with_optimize_config(cfg)
            .compile(&spec)
            .unwrap();
        let c = Compiler::new(devices::ibmqx4())
            .with_optimization(Some(cfg))
            .compile(&spec)
            .unwrap();
        assert_eq!(a.optimized, b.optimized);
        assert_eq!(a.optimized, c.optimized);
        let off = Compiler::new(devices::ibmqx4())
            .with_optimization(Optimization::Disabled)
            .compile(&spec)
            .unwrap();
        assert_eq!(off.optimized, off.unoptimized);
    }

    #[test]
    fn trace_sink_receives_the_same_events_as_metrics() {
        let sink = Arc::new(qsyn_trace::TableSink::new());
        let r = Compiler::new(devices::ibmqx4())
            .with_trace(sink.clone())
            .compile(&toffoli_spec())
            .unwrap();
        assert_eq!(sink.events(), r.metrics().events);
    }

    #[test]
    fn null_sink_results_match_untraced_results() {
        let traced = Compiler::new(devices::ibmqx4())
            .with_trace(Arc::new(qsyn_trace::NullSink))
            .compile(&toffoli_spec())
            .unwrap();
        let plain = Compiler::new(devices::ibmqx4()).compile(&toffoli_spec()).unwrap();
        assert_eq!(traced.optimized, plain.optimized);
        assert_eq!(traced.unoptimized, plain.unoptimized);
        assert_eq!(traced.placed, plain.placed);
        assert_eq!(traced.verified, plain.verified);
    }

    #[test]
    fn persistent_layout_strategy_compiles_and_verifies() {
        let mut spec = Circuit::new(5);
        spec.push(Gate::toffoli(0, 2, 4));
        spec.push(Gate::cx(4, 0));
        spec.push(Gate::cx(0, 4));
        for device in devices::ibm_devices() {
            let r = Compiler::new(device.clone())
                .with_swap_strategy(SwapStrategy::PersistentLayout)
                .compile(&spec)
                .unwrap();
            assert_eq!(r.verified, Some(true), "{}", device.name());
            for g in r.optimized.gates() {
                if let Gate::Cx { control, target } = g {
                    assert!(device.has_coupling(*control, *target));
                }
            }
        }
    }

    #[test]
    fn relative_phase_strategy_compiles_verified_with_fewer_t() {
        let mut spec = Circuit::new(5);
        spec.push(Gate::mct(vec![0, 1, 2, 3], 4));
        let exact = Compiler::new(devices::ibmqx5()).compile(&spec).unwrap();
        let rp = Compiler::new(devices::ibmqx5())
            .with_decompose_strategy(DecomposeStrategy::RelativePhase)
            .compile(&spec)
            .unwrap();
        assert_eq!(exact.verified, Some(true));
        assert_eq!(rp.verified, Some(true), "relative phases must cancel");
        assert!(
            rp.optimized.stats().t_count < exact.optimized.stats().t_count,
            "{} vs {}",
            rp.optimized.stats().t_count,
            exact.optimized.stats().t_count
        );
    }

    #[test]
    fn compiles_to_cz_native_library() {
        // The paper's modularity claim: add a library with a different
        // native two-qubit gate and the same pipeline targets it.
        use qsyn_arch::TwoQubitNative;
        let d = qsyn_arch::devices::ring(5).with_native(TwoQubitNative::Cz);
        let r = Compiler::new(d.clone()).compile(&toffoli_spec()).unwrap();
        assert_eq!(r.verified, Some(true));
        assert!(d.can_execute(&r.optimized));
        assert!(
            r.optimized
                .gates()
                .iter()
                .any(|g| matches!(g, Gate::Cz { .. })),
            "CZ library output uses CZ"
        );
        assert!(
            !r.optimized
                .gates()
                .iter()
                .any(|g| matches!(g, Gate::Cx { .. })),
            "no CNOT on a CZ device"
        );
    }

    #[test]
    fn debug_format_names_parts() {
        let c = Compiler::new(devices::ibmqx2());
        let text = format!("{c:?}");
        assert!(text.contains("ibmqx2"));
        assert!(text.contains("transmon-eqn2"));
    }
}
