//! Solovay-Kitaev approximation of arbitrary one-qubit unitaries by the
//! discrete H/T library (Dawson & Nielsen's formulation).
//!
//! The IBM targets of the paper expose continuous "phase rotation" and
//! "amplitude rotation" gates, but fault-tolerant execution — and this
//! compiler's exact gate set — only has `X, Y, Z, H, S, S†, T, T†`.
//! Solovay-Kitaev bridges the gap: any 1-qubit unitary is approximated to
//! arbitrary accuracy by an `O(log^c(1/eps))`-length library word.
//!
//! Approximation is inherently *in*exact, so compiled rotations cannot pass
//! the canonical QMDD equality check; grade them with
//! [`qsyn_qmdd::process_fidelity`] instead (see the
//! `arbitrary_rotation` example).

use qsyn_gate::{C64, Gate, Matrix, SingleOp};
use std::sync::OnceLock;

/// A 2x2 special-unitary matrix in flat form `[u00, u01, u10, u11]`.
type Su2 = [C64; 4];

fn mul2(a: &Su2, b: &Su2) -> Su2 {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

fn dag2(a: &Su2) -> Su2 {
    [a[0].conj(), a[2].conj(), a[1].conj(), a[3].conj()]
}

/// Projects a unitary onto SU(2) (unit determinant) by dividing out a
/// square root of the determinant.
fn to_su2(a: &Su2) -> Su2 {
    let det = a[0] * a[3] - a[1] * a[2];
    // Principal square root of the unit-modulus determinant.
    let theta = det.im.atan2(det.re) / 2.0;
    let root = C64::cis(theta).recip();
    [a[0] * root, a[1] * root, a[2] * root, a[3] * root]
}

/// Projective distance ignoring global phase:
/// `sqrt(1 - |tr(U† V)| / 2)`.
fn dist(a: &Su2, b: &Su2) -> f64 {
    let adag = dag2(a);
    let m = mul2(&adag, b);
    let tr = m[0] + m[3];
    (1.0 - (tr.abs() / 2.0).min(1.0)).max(0.0).sqrt()
}

/// Axis-angle form of an SU(2) element:
/// `U = cos(t/2) I - i sin(t/2) (n . sigma)`.
fn axis_angle(u: &Su2) -> ([f64; 3], f64) {
    let cos_half = ((u[0].re + u[3].re) / 2.0).clamp(-1.0, 1.0); // Re tr / 2
    let angle = 2.0 * cos_half.acos();
    let sin_half = (angle / 2.0).sin();
    if sin_half.abs() < 1e-12 {
        return ([0.0, 0.0, 1.0], 0.0);
    }
    // U = [[c - i nz s, (-i nx - ny) s], [(-i nx + ny) s, c + i nz s]]
    let nx = -(u[1].im + u[2].im) / 2.0 / sin_half;
    let ny = (u[2].re - u[1].re) / 2.0 / sin_half;
    let nz = -(u[0].im - u[3].im) / 2.0 / sin_half;
    let norm = (nx * nx + ny * ny + nz * nz).sqrt().max(1e-12);
    ([nx / norm, ny / norm, nz / norm], angle)
}

/// SU(2) rotation by `angle` about axis `n` (not necessarily unit).
fn rotation(n: [f64; 3], angle: f64) -> Su2 {
    let norm = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt().max(1e-12);
    let (nx, ny, nz) = (n[0] / norm, n[1] / norm, n[2] / norm);
    let c = (angle / 2.0).cos();
    let s = (angle / 2.0).sin();
    [
        C64::new(c, -nz * s),
        C64::new(-ny * s, -nx * s),
        C64::new(ny * s, -nx * s),
        C64::new(c, nz * s),
    ]
}

/// The group-commutator factorization of Dawson & Nielsen: finds rotations
/// `V, W` with `U ~ V W V† W†` for a small rotation `U`.
fn gc_decompose(u: &Su2) -> (Su2, Su2) {
    let (axis_u, theta) = axis_angle(u);
    // Solve sin(theta/2) = 2 sin^2(phi/2) sqrt(1 - sin^4(phi/2)) exactly:
    // with y = sin^2(phi/2), 4 y^2 (1 - y^2) = sin^2(theta/2) gives
    // y^2 = (1 - sqrt(1 - sin^2(theta/2))) / 2.
    let st = (theta / 2.0).sin().abs();
    let y2 = (1.0 - (1.0 - st * st).max(0.0).sqrt()) / 2.0;
    let phi = 2.0 * y2.max(0.0).sqrt().sqrt().asin();
    let v = rotation([1.0, 0.0, 0.0], phi);
    let w = rotation([0.0, 1.0, 0.0], phi);
    // [V, W] is a rotation by theta about some axis; conjugate it onto
    // U's axis.
    let vdag = dag2(&v);
    let wdag = dag2(&w);
    let comm = mul2(&mul2(&v, &w), &mul2(&vdag, &wdag));
    let (axis_c, _) = axis_angle(&comm);
    let s = axis_to_axis(axis_c, axis_u);
    let sdag = dag2(&s);
    let a = mul2(&mul2(&s, &v), &sdag);
    let b = mul2(&mul2(&s, &w), &sdag);
    (a, b)
}

/// A rotation taking unit axis `from` to unit axis `to`.
fn axis_to_axis(from: [f64; 3], to: [f64; 3]) -> Su2 {
    let dot = (from[0] * to[0] + from[1] * to[1] + from[2] * to[2]).clamp(-1.0, 1.0);
    let cross = [
        from[1] * to[2] - from[2] * to[1],
        from[2] * to[0] - from[0] * to[2],
        from[0] * to[1] - from[1] * to[0],
    ];
    let norm = (cross[0] * cross[0] + cross[1] * cross[1] + cross[2] * cross[2]).sqrt();
    if norm < 1e-9 {
        if dot > 0.0 {
            return rotation([0.0, 0.0, 1.0], 0.0); // identity
        }
        // Antipodal: rotate by pi about any orthogonal axis.
        let ortho = if from[0].abs() < 0.9 {
            [0.0, -from[2], from[1]]
        } else {
            [-from[1], from[0], 0.0]
        };
        return rotation(ortho, std::f64::consts::PI);
    }
    rotation(cross, dot.acos())
}

/// One entry of the base epsilon-net: a matrix and the library word
/// realizing it.
struct BaseEntry {
    matrix: Su2,
    word: Vec<SingleOp>,
}

/// The base net: all distinct products of H and T up to a fixed length,
/// deduplicated projectively.
fn base_net() -> &'static Vec<BaseEntry> {
    static NET: OnceLock<Vec<BaseEntry>> = OnceLock::new();
    NET.get_or_init(|| {
        const MAX_LEN: usize = 22;
        let h = op_matrix(SingleOp::H);
        let t = op_matrix(SingleOp::T);
        let mut entries: Vec<BaseEntry> = vec![BaseEntry {
            matrix: [C64::ONE, C64::ZERO, C64::ZERO, C64::ONE],
            word: vec![],
        }];
        let mut frontier: Vec<usize> = vec![0];
        // Spatial hash for projective dedup.
        let mut seen: qsyn_qmdd::FxHashSet<[i64; 8]> = qsyn_qmdd::FxHashSet::default();
        seen.insert(key_of(&entries[0].matrix));
        for _ in 0..MAX_LEN {
            let mut next = Vec::new();
            for &idx in &frontier {
                for (op, m) in [(SingleOp::H, &h), (SingleOp::T, &t)] {
                    let cand = to_su2(&mul2(m, &entries[idx].matrix));
                    let k = key_of(&cand);
                    if seen.insert(k) {
                        let mut word = entries[idx].word.clone();
                        word.push(op);
                        entries.push(BaseEntry { matrix: cand, word });
                        next.push(entries.len() - 1);
                    }
                }
            }
            frontier = next;
        }
        entries
    })
}

fn op_matrix(op: SingleOp) -> Su2 {
    let m = op.matrix();
    to_su2(&[m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]])
}

/// Quantized projective key: canonicalize the phase so that the first
/// significant entry is positive-real, then round.
fn key_of(m: &Su2) -> [i64; 8] {
    let pivot = if m[0].abs() > 1e-6 { m[0] } else { m[1] };
    let phase = pivot * (1.0 / pivot.abs());
    let fix = phase.conj();
    let q = |v: C64| {
        let v = v * fix;
        [(v.re * 1e6).round() as i64, (v.im * 1e6).round() as i64]
    };
    let (a, b, c, d) = (q(m[0]), q(m[1]), q(m[2]), q(m[3]));
    [a[0], a[1], b[0], b[1], c[0], c[1], d[0], d[1]]
}

/// Nearest base-net entry (projective distance).
fn nearest_base(u: &Su2) -> (&'static Su2, Vec<SingleOp>) {
    let mut best = f64::INFINITY;
    let mut pick = 0usize;
    for (i, e) in base_net().iter().enumerate() {
        let d = dist(&e.matrix, u);
        if d < best {
            best = d;
            pick = i;
        }
    }
    let e = &base_net()[pick];
    (&e.matrix, e.word.clone())
}

/// Recursive Solovay-Kitaev: returns a library word and its matrix.
fn sk(u: &Su2, depth: usize) -> (Su2, Vec<SingleOp>) {
    if depth == 0 {
        let (m, w) = nearest_base(u);
        return (*m, w);
    }
    let (un, wn) = sk(u, depth - 1);
    let delta = mul2(u, &dag2(&un));
    let (v, w) = gc_decompose(&to_su2(&delta));
    let (vn, vw) = sk(&v, depth - 1);
    let (wnm, ww) = sk(&w, depth - 1);
    // U_{k} = V W V† W† U_{k-1}; words apply left-to-right in circuit
    // order, i.e. reversed relative to the matrix product.
    let approx = mul2(
        &mul2(&mul2(&vn, &wnm), &mul2(&dag2(&vn), &dag2(&wnm))),
        &un,
    );
    let mut word = wn;
    word.extend(dagger_word(&ww));
    word.extend(dagger_word(&vw));
    word.extend(ww);
    word.extend(vw);
    (approx, word)
}

/// The library word for the adjoint of a word.
fn dagger_word(word: &[SingleOp]) -> Vec<SingleOp> {
    word.iter().rev().map(|op| op.inverse()).collect()
}

/// Result of a Solovay-Kitaev approximation.
#[derive(Debug, Clone)]
pub struct SkApproximation {
    /// Library gates, in circuit (execution) order, acting on one line.
    pub word: Vec<SingleOp>,
    /// Projective distance `sqrt(1 - |tr(U†V)|/2)` actually achieved.
    pub error: f64,
}

/// Approximates an arbitrary one-qubit unitary by an H/T-library word with
/// the given recursion depth (0 = base net only; each level shrinks the
/// error roughly as `eps -> c eps^{3/2}`).
///
/// The result is correct up to a global phase, which the discrete library
/// cannot (and for compilation purposes need not) reproduce.
///
/// # Panics
///
/// Panics if `u` is not (approximately) unitary.
pub fn approximate_unitary(u: &Matrix, depth: usize) -> SkApproximation {
    assert_eq!(u.dim(), 2, "one-qubit unitaries only");
    assert!(u.is_unitary(), "input must be unitary");
    let su = to_su2(&[u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]]);
    let (m, word) = sk(&su, depth);
    SkApproximation {
        error: dist(&m, &su),
        word,
    }
}

/// Approximates `Rz(angle) = diag(e^{-i angle/2}, e^{i angle/2})` and
/// returns the gates applied to `qubit`.
pub fn approximate_rz(angle: f64, qubit: usize, depth: usize) -> (Vec<Gate>, f64) {
    // Exact shortcut for multiples of pi/4 (up to global phase).
    let steps = angle / std::f64::consts::FRAC_PI_4;
    if (steps - steps.round()).abs() < 1e-12 {
        let k = (steps.round() as i64).rem_euclid(8) as u8;
        let gates = SingleOp::from_phase_steps(k)
            .into_iter()
            .map(|op| Gate::single(op, qubit))
            .collect();
        return (gates, 0.0);
    }
    let m = Matrix::from_rows(&[
        [C64::cis(-angle / 2.0), C64::ZERO],
        [C64::ZERO, C64::cis(angle / 2.0)],
    ]);
    let approx = approximate_unitary(&m, depth);
    (
        approx
            .word
            .into_iter()
            .map(|op| Gate::single(op, qubit))
            .collect(),
        approx.error,
    )
}

/// [`approximate_rz`] with an accuracy target: increases the recursion
/// depth (up to 4) until the projective error drops below `epsilon`,
/// returning the first word that achieves it (or the best word found).
pub fn approximate_rz_to_accuracy(
    angle: f64,
    qubit: usize,
    epsilon: f64,
) -> (Vec<Gate>, f64) {
    let mut best: Option<(Vec<Gate>, f64)> = None;
    for depth in 0..=4 {
        let (gates, error) = approximate_rz(angle, qubit, depth);
        let better = best.as_ref().is_none_or(|(_, e)| error < *e);
        if better {
            best = Some((gates, error));
        }
        if best.as_ref().is_some_and(|(_, e)| *e <= epsilon) {
            break;
        }
    }
    best.expect("at least depth 0 ran")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn su_of(gates: &[SingleOp]) -> Su2 {
        let mut m = [C64::ONE, C64::ZERO, C64::ZERO, C64::ONE];
        for op in gates {
            m = to_su2(&mul2(&op_matrix(*op), &m));
        }
        m
    }

    #[test]
    fn distance_is_a_projective_metric() {
        let h = op_matrix(SingleOp::H);
        let t = op_matrix(SingleOp::T);
        assert!(dist(&h, &h) < 1e-9);
        // Global phase is ignored.
        let mh = [h[0] * C64::I, h[1] * C64::I, h[2] * C64::I, h[3] * C64::I];
        assert!(dist(&h, &mh) < 1e-9);
        assert!(dist(&h, &t) > 0.1);
    }

    #[test]
    fn axis_angle_round_trips() {
        for (axis, angle) in [
            ([1.0, 0.0, 0.0], 0.7),
            ([0.0, 1.0, 0.0], 2.1),
            ([0.6, 0.0, 0.8], 1.3),
            ([0.0, 0.0, 1.0], 0.05),
        ] {
            let u = rotation(axis, angle);
            let (a2, t2) = axis_angle(&u);
            assert!((t2 - angle).abs() < 1e-9, "angle {angle} vs {t2}");
            for k in 0..3 {
                assert!((a2[k] - axis[k]).abs() < 1e-6, "axis {axis:?} vs {a2:?}");
            }
        }
    }

    #[test]
    fn gc_decompose_reconstructs_small_rotations() {
        for angle in [0.05f64, 0.1, 0.02] {
            let u = rotation([0.3, 0.5, 0.81], angle);
            let (v, w) = gc_decompose(&u);
            let comm = mul2(&mul2(&v, &w), &mul2(&dag2(&v), &dag2(&w)));
            assert!(dist(&comm, &u) < 1e-6, "angle {angle}: {}", dist(&comm, &u));
        }
    }

    #[test]
    fn base_net_is_substantial_and_correct() {
        let net = base_net();
        assert!(net.len() > 2000, "net too small: {}", net.len());
        // Every entry's word reproduces its matrix (projectively).
        for e in net.iter().step_by(101) {
            // dist is a square-root metric: ~1e-16 trace noise shows
            // up as ~1e-8, so compare at 1e-6.
            assert!(dist(&su_of(&e.word), &e.matrix) < 1e-6);
        }
    }

    #[test]
    fn deeper_recursion_reduces_error() {
        let target = rotation([0.0, 0.0, 1.0], 0.5317);
        let mut last = f64::INFINITY;
        for depth in 0..3 {
            let m = Matrix::from_rows(&[
                [C64::new(target[0].re, target[0].im), C64::new(target[1].re, target[1].im)],
                [C64::new(target[2].re, target[2].im), C64::new(target[3].re, target[3].im)],
            ]);
            let approx = approximate_unitary(&m, depth);
            assert!(
                approx.error <= last + 1e-12,
                "depth {depth}: {} vs {last}",
                approx.error
            );
            // The word's matrix must actually achieve the claimed error.
            assert!(dist(&su_of(&approx.word), &to_su2(&target)) < approx.error + 1e-6);
            last = approx.error;
        }
        assert!(last < 0.02, "depth-2 error too large: {last}");
    }

    #[test]
    fn rz_exact_shortcut_for_library_angles() {
        for k in 0..8i64 {
            let (gates, err) = approximate_rz(k as f64 * std::f64::consts::FRAC_PI_4, 0, 2);
            assert_eq!(err, 0.0, "k={k}");
            assert!(gates.len() <= 2);
        }
    }

    #[test]
    fn accuracy_targeted_rz() {
        let (gates, err) = approximate_rz_to_accuracy(1.234, 0, 0.05);
        assert!(err <= 0.05, "requested accuracy met: {err}");
        assert!(!gates.is_empty());
        // Exact angles resolve at zero cost regardless of target.
        let (gates, err) = approximate_rz_to_accuracy(std::f64::consts::FRAC_PI_2, 0, 1e-12);
        assert_eq!(err, 0.0);
        assert!(gates.len() <= 2);
    }

    #[test]
    fn rz_approximation_acts_correctly_on_states() {
        use qsyn_circuit::Circuit;
        let angle = 0.7391;
        let (gates, err) = approximate_rz(angle, 0, 2);
        assert!(err < 0.05, "error {err}");
        let mut c = Circuit::new(1);
        c.extend(gates);
        let m = c.to_matrix();
        // Compare the relative phase between |0> and |1> components.
        let rel = (m[(1, 1)] / m[(0, 0)]).im.atan2((m[(1, 1)] / m[(0, 0)]).re);
        let diff = (rel - angle).rem_euclid(2.0 * std::f64::consts::PI);
        let diff = diff.min(2.0 * std::f64::consts::PI - diff);
        assert!(diff < 0.15, "relative phase off by {diff}");
    }
}

