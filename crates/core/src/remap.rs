//! Persistent-layout routing: the modern alternative to the paper's CTR.
//!
//! CTR returns the control to its original position after every rerouted
//! CNOT ("the control qubit traverses the SWAP path in reverse"), which
//! keeps the line assignment fixed but pays the SWAP chain twice. The
//! persistent-layout router instead lets the logical-to-physical layout
//! drift: SWAPs move a logical line and *stay*, later gates are routed
//! under the updated layout, and a single final restoration network
//! returns every line to its home position so the overall unitary equals
//! the specification exactly (QMDD-verifiable, like everything else).
//!
//! The restoration network sorts the layout permutation over the coupling
//! graph with tree token-sorting: positions are fixed in reverse-BFS
//! order, so each fix routes entirely through not-yet-fixed positions and
//! the procedure provably terminates.

use crate::error::CompileError;
use crate::route::{emit_adjacent_cnot, emit_adjacent_cz, emit_adjacent_swap, RoutingObjective};
use qsyn_arch::{Device, TwoQubitNative};
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;
use std::collections::VecDeque;

/// How rerouting SWAPs are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapStrategy {
    /// The paper's CTR: swap out, execute, swap back (line assignment
    /// preserved gate by gate).
    #[default]
    ReturnControl,
    /// SWAPs persist and the layout drifts; one restoration network at the
    /// end re-establishes the original assignment.
    PersistentLayout,
}

/// Tracks the drifting logical-to-physical assignment (shared with the
/// lookahead strategy, which also routes under a persistent layout).
pub(crate) struct Layout {
    pub(crate) phys_of: Vec<usize>, // logical line -> physical qubit
    pub(crate) log_of: Vec<usize>,  // physical qubit -> logical line
}

impl Layout {
    pub(crate) fn identity(n: usize) -> Self {
        Layout {
            phys_of: (0..n).collect(),
            log_of: (0..n).collect(),
        }
    }

    pub(crate) fn swap_physical(&mut self, a: usize, b: usize) {
        let (la, lb) = (self.log_of[a], self.log_of[b]);
        self.log_of.swap(a, b);
        self.phys_of[la] = b;
        self.phys_of[lb] = a;
    }

    pub(crate) fn is_identity(&self) -> bool {
        self.phys_of.iter().enumerate().all(|(l, &p)| l == p)
    }
}

/// Routes a technology-ready circuit with a persistent layout, appending a
/// restoration network so the result equals the input exactly.
///
/// # Errors
///
/// Returns [`CompileError::UnmappedGate`] for multi-qubit gates other than
/// the device's native one, or [`CompileError::RouteNotFound`] on a
/// disconnected coupling map.
pub fn route_circuit_persistent(
    circuit: &Circuit,
    device: &Device,
    objective: RoutingObjective,
) -> Result<Circuit, CompileError> {
    route_circuit_persistent_traced(circuit, device, objective).map(|(c, _)| c)
}

/// What the persistent-layout router did (the trace layer reports these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistentRouteCounters {
    /// Drifting SWAPs emitted while bringing operands adjacent.
    pub swaps_inserted: usize,
    /// Adjacent SWAPs of the final restoration network.
    pub restoration_swaps: usize,
    /// Two-qubit gates that needed at least one drifting SWAP.
    pub gates_rerouted: usize,
}

/// [`route_circuit_persistent`] that also reports
/// [`PersistentRouteCounters`].
///
/// # Errors
///
/// See [`route_circuit_persistent`].
pub fn route_circuit_persistent_traced(
    circuit: &Circuit,
    device: &Device,
    objective: RoutingObjective,
) -> Result<(Circuit, PersistentRouteCounters), CompileError> {
    let _ = objective; // path search below is hop-based; kept for API parity
    let n = device.n_qubits();
    let mut out = Circuit::new(n);
    if let Some(name) = circuit.name() {
        out.set_name(name.to_string());
    }
    let mut layout = Layout::identity(n);
    let mut counters = PersistentRouteCounters::default();

    for g in circuit.gates() {
        match g {
            Gate::Single { op, qubit } => {
                out.push(Gate::single(*op, layout.phys_of[*qubit]));
            }
            Gate::Cx { control, target } => {
                let (pc, pt) = (layout.phys_of[*control], layout.phys_of[*target]);
                let (eff, hops) = bring_adjacent(device, pc, pt, &mut layout, &mut out)?;
                counters.swaps_inserted += hops;
                counters.gates_rerouted += usize::from(hops > 0);
                emit_adjacent_cnot(device, eff, pt, &mut out)?;
            }
            Gate::Cz { control, target } if device.native() == TwoQubitNative::Cz => {
                let (pc, pt) = (layout.phys_of[*control], layout.phys_of[*target]);
                let (eff, hops) = bring_adjacent(device, pc, pt, &mut layout, &mut out)?;
                counters.swaps_inserted += hops;
                counters.gates_rerouted += usize::from(hops > 0);
                emit_adjacent_cz(device, eff, pt, &mut out)?;
            }
            other => return Err(CompileError::UnmappedGate(other.to_string())),
        }
    }

    // Restore the identity layout with one sorting network.
    if !layout.is_identity() {
        for (a, b) in restoration_swaps(device, &mut layout) {
            emit_adjacent_swap(device, a, b, &mut out)?;
            counters.restoration_swaps += 1;
        }
        debug_assert!(layout.is_identity());
    }
    Ok((out, counters))
}

/// Moves the occupant of `from` adjacent to `to` with persistent SWAPs
/// (BFS shortest path, never stepping onto `to`); returns the physical
/// qubit now holding the moved logical line and the number of SWAP hops
/// that move took.
fn bring_adjacent(
    device: &Device,
    from: usize,
    to: usize,
    layout: &mut Layout,
    out: &mut Circuit,
) -> Result<(usize, usize), CompileError> {
    if device.are_adjacent(from, to) {
        return Ok((from, 0));
    }
    // BFS from `from` to any neighbor of `to`, avoiding `to` itself.
    let n = device.n_qubits();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from] = true;
    seen[to] = true;
    let mut queue = VecDeque::from([from]);
    let mut stop = None;
    'search: while let Some(q) = queue.pop_front() {
        for &nb in device.neighbors(q) {
            if seen[nb] {
                continue;
            }
            seen[nb] = true;
            parent[nb] = Some(q);
            if device.are_adjacent(nb, to) {
                stop = Some(nb);
                break 'search;
            }
            queue.push_back(nb);
        }
    }
    let Some(stop) = stop else {
        return Err(CompileError::RouteNotFound {
            control: from,
            target: to,
        });
    };
    let mut path = vec![stop];
    let mut cur = stop;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    for w in path.windows(2) {
        emit_adjacent_swap(device, w[0], w[1], out)?;
        layout.swap_physical(w[0], w[1]);
    }
    Ok((stop, path.len() - 1))
}

/// Adjacent transpositions sorting the layout back to the identity, via
/// token sorting on a BFS spanning tree (fix positions deepest-first; every
/// move routes through not-yet-fixed ancestors only).
pub(crate) fn restoration_swaps(device: &Device, layout: &mut Layout) -> Vec<(usize, usize)> {
    let n = device.n_qubits();
    // BFS spanning tree from qubit 0 (devices are connected).
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    seen[0] = true;
    let mut queue = VecDeque::from([0usize]);
    while let Some(q) = queue.pop_front() {
        order.push(q);
        for &nb in device.neighbors(q) {
            if !seen[nb] {
                seen[nb] = true;
                parent[nb] = Some(q);
                queue.push_back(nb);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "coupling map must be connected");

    let mut swaps = Vec::new();
    let mut fixed = vec![false; n];
    // Fix deepest-first: children precede parents in reversed BFS order,
    // so the tree-path fallback below only ever crosses unfixed positions.
    for &home in order.iter().rev() {
        let from = layout.phys_of[home]; // where logical `home` sits now
        if from != home {
            // Prefer a true shortest path that avoids fixed positions;
            // fall back to the (always valid) spanning-tree path.
            let path = unfixed_shortest_path(device, from, home, &fixed)
                .unwrap_or_else(|| tree_path(&parent, from, home));
            for w in path.windows(2) {
                swaps.push((w[0], w[1]));
                layout.swap_physical(w[0], w[1]);
            }
        }
        fixed[home] = true;
    }
    swaps
}

/// BFS shortest path between two unfixed positions through unfixed
/// positions only.
fn unfixed_shortest_path(
    device: &Device,
    from: usize,
    to: usize,
    fixed: &[bool],
) -> Option<Vec<usize>> {
    let n = device.n_qubits();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut queue = VecDeque::from([from]);
    while let Some(q) = queue.pop_front() {
        if q == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(p) = parent[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &nb in device.neighbors(q) {
            if !seen[nb] && !fixed[nb] {
                seen[nb] = true;
                parent[nb] = Some(q);
                queue.push_back(nb);
            }
        }
    }
    None
}

/// The unique tree path between two nodes given parent pointers.
fn tree_path(parent: &[Option<usize>], a: usize, b: usize) -> Vec<usize> {
    let chain = |mut q: usize| {
        let mut up = vec![q];
        while let Some(p) = parent[q] {
            up.push(p);
            q = p;
        }
        up
    };
    let ca = chain(a);
    let cb = chain(b);
    // Find the lowest common ancestor by trimming the shared tail.
    let mut ia = ca.len();
    let mut ib = cb.len();
    while ia > 0 && ib > 0 && ca[ia - 1] == cb[ib - 1] {
        ia -= 1;
        ib -= 1;
    }
    // a -> lca -> b.
    let mut path: Vec<usize> = ca[..=ia.min(ca.len() - 1)].to_vec();
    for k in (0..=ib.min(cb.len() - 1)).rev() {
        if path.last() != Some(&cb[k]) {
            path.push(cb[k]);
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;
    use qsyn_qmdd::circuits_equal;

    fn routed_equal(c: &Circuit, d: &Device) -> Circuit {
        let r = route_circuit_persistent(c, d, RoutingObjective::FewestSwaps).unwrap();
        assert!(circuits_equal(c, &r), "persistent routing broke semantics");
        for g in r.gates() {
            if let Gate::Cx { control, target } = g {
                assert!(d.has_coupling(*control, *target), "illegal {g}");
            }
        }
        r
    }

    #[test]
    fn single_distant_cnot() {
        let d = devices::ibmqx3();
        let mut c = Circuit::new(16);
        c.push(Gate::cx(5, 10));
        routed_equal(&c, &d);
    }

    #[test]
    fn repeated_distant_cnots_pay_the_chain_once() {
        let d = devices::ibmqx3();
        let mut c = Circuit::new(16);
        for _ in 0..4 {
            c.push(Gate::cx(5, 10));
        }
        let persistent = routed_equal(&c, &d);
        let ctr = crate::route::route_circuit(&c, &d).unwrap();
        assert!(
            persistent.len() < ctr.len(),
            "persistent {} vs ctr {}",
            persistent.len(),
            ctr.len()
        );
    }

    #[test]
    fn single_qubit_gates_follow_the_layout() {
        // After a drifting SWAP, later one-qubit gates must land on the
        // moved line; equivalence checking catches any slip.
        let d = devices::ibmqx4();
        let mut c = Circuit::new(5);
        c.push(Gate::cx(0, 4)); // forces movement on a 5-qubit device
        c.push(Gate::t(0));
        c.push(Gate::h(4));
        c.push(Gate::cx(4, 0));
        routed_equal(&c, &d);
    }

    #[test]
    fn mixed_workload_on_every_ibm_device() {
        for d in devices::ibm_devices() {
            let n = d.n_qubits().min(5);
            let mut c = Circuit::new(n);
            c.push(Gate::h(0));
            c.push(Gate::cx(0, n - 1));
            c.push(Gate::t(n - 1));
            c.push(Gate::cx(n - 1, 1));
            c.push(Gate::cx(1, n - 2));
            routed_equal(&c, &d);
        }
    }

    #[test]
    fn cz_native_persistent_routing() {
        let d = devices::ring(6).with_native(TwoQubitNative::Cz);
        let mut c = Circuit::new(6);
        c.push(Gate::cz(0, 3));
        c.push(Gate::cx(1, 4));
        let r = route_circuit_persistent(&c, &d, RoutingObjective::FewestSwaps).unwrap();
        assert!(circuits_equal(&c, &r));
        for g in r.gates() {
            assert!(d.supports(g), "unsupported {g}");
        }
    }

    #[test]
    fn traced_persistent_routing_counts_and_matches_untraced() {
        let d = devices::ibmqx3();
        let mut c = Circuit::new(16);
        c.push(Gate::cx(5, 10)); // needs drifting swaps + restoration
        c.push(Gate::cx(0, 1)); // adjacent
        let (traced, counters) =
            route_circuit_persistent_traced(&c, &d, RoutingObjective::FewestSwaps).unwrap();
        let plain = route_circuit_persistent(&c, &d, RoutingObjective::FewestSwaps).unwrap();
        assert_eq!(traced, plain, "tracing must not change the output");
        assert_eq!(counters.gates_rerouted, 1);
        assert!(counters.swaps_inserted > 0);
        assert!(counters.restoration_swaps > 0, "layout drifted, must restore");
    }

    #[test]
    fn restoration_sorts_any_layout() {
        // Scramble a layout with random physical swaps, then restore.
        for d in [devices::ibmqx5(), devices::qc96()] {
            let n = d.n_qubits();
            let mut layout = Layout::identity(n);
            let mut seed = 0xfeed_beefu64;
            let mut next = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            for _ in 0..3 * n {
                let a = (next() as usize) % n;
                for &b in d.neighbors(a) {
                    layout.swap_physical(a, b);
                }
            }
            let _ = restoration_swaps(&d, &mut layout);
            assert!(layout.is_identity(), "{}", d.name());
        }
    }

    #[test]
    fn restoration_swaps_are_adjacent() {
        let d = devices::ibmqx3();
        let mut layout = Layout::identity(16);
        layout.swap_physical(5, 12);
        layout.swap_physical(12, 11);
        layout.swap_physical(0, 1);
        let swaps = restoration_swaps(&d, &mut layout);
        for (a, b) in swaps {
            assert!(d.are_adjacent(a, b), "non-adjacent restoration swap");
        }
    }

    #[test]
    fn tree_path_endpoints() {
        // Chain tree: 0 <- 1 <- 2 <- 3.
        let parent = vec![None, Some(0), Some(1), Some(2)];
        assert_eq!(tree_path(&parent, 3, 0), vec![3, 2, 1, 0]);
        assert_eq!(tree_path(&parent, 0, 3), vec![0, 1, 2, 3]);
        assert_eq!(tree_path(&parent, 2, 2), vec![2]);
    }
}
