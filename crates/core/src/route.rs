//! CNOT legalization: orientation reversal (paper Fig. 6) and the
//! connectivity-tree reroute, CTR (paper Figs. 4 and 5).
//!
//! CTR builds a breadth-first tree over the *undirected* coupling graph
//! rooted at the CNOT's control qubit (direction does not matter when
//! building the tree because a reversed CNOT is available via Fig. 6). The
//! control's quantum information SWAPs along the shortest tree path until it
//! sits adjacent to the target, the CNOT executes, and the SWAPs rewind so
//! every line keeps its original assignment.

use crate::error::CompileError;
use qsyn_arch::Device;
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;
use std::cell::RefCell;
use std::collections::{BinaryHeap, VecDeque};

/// Per-thread search scratch reused across reroutes. Routing a circuit
/// runs one CTR search per non-adjacent CNOT; recycling the visited/parent
/// buffers (and the Dijkstra state for fidelity routing) keeps the hot
/// loop allocation-free after the first gate.
struct SearchScratch {
    parent: Vec<Option<usize>>,
    seen: Vec<bool>,
    queue: VecDeque<usize>,
    dist: Vec<f64>,
    settled: Vec<bool>,
    heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
}

thread_local! {
    static SCRATCH: RefCell<SearchScratch> = const {
        RefCell::new(SearchScratch {
            parent: Vec::new(),
            seen: Vec::new(),
            queue: VecDeque::new(),
            dist: Vec::new(),
            settled: Vec::new(),
            heap: BinaryHeap::new(),
        })
    };
}

/// What the CTR search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingObjective {
    /// Fewest SWAP hops (the paper's shortest-path tree search).
    #[default]
    FewestSwaps,
    /// Highest end-to-end fidelity, using the device's per-coupling CNOT
    /// error annotations (unannotated couplings assume
    /// [`DEFAULT_CNOT_ERROR`]). Falls back to hop counting when the device
    /// carries no characterization data at all.
    HighestFidelity,
}

/// Error probability assumed for couplings without characterization data
/// when routing for fidelity (a typical transmon CNOT error magnitude).
pub const DEFAULT_CNOT_ERROR: f64 = 2.5e-2;

/// Negative log-fidelity of one CNOT leg over a native coupling, including
/// a small surcharge for the four Hadamards when only the reverse
/// orientation exists.
pub(crate) fn cnot_log_cost(device: &Device, control: usize, target: usize) -> f64 {
    const H_SURCHARGE: f64 = 4e-3; // four one-qubit gates at ~1e-3 each
    if device.has_coupling(control, target) {
        let e = device.cnot_error(control, target).unwrap_or(DEFAULT_CNOT_ERROR);
        -(1.0 - e).ln()
    } else {
        let e = device.cnot_error(target, control).unwrap_or(DEFAULT_CNOT_ERROR);
        -(1.0 - e).ln() + H_SURCHARGE
    }
}

/// Negative log-fidelity of a full SWAP between adjacent qubits (its three
/// CNOT legs in the orientation [`emit_adjacent_swap`] chooses).
pub(crate) fn swap_log_cost(device: &Device, a: usize, b: usize) -> f64 {
    let (x, y) = if device.has_coupling(a, b) { (a, b) } else { (b, a) };
    cnot_log_cost(device, x, y) * 2.0 + cnot_log_cost(device, y, x)
}

/// The SWAP path found by CTR: the control hops
/// `path[0] -> path[1] -> ...`, ending adjacent to the target.
///
/// `path[0]` is the control itself; an empty path means control and target
/// are already adjacent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrRoute {
    /// Qubits the control information visits, starting at the control.
    pub path: Vec<usize>,
    /// The qubit that finally acts as the (possibly reversed) CNOT control.
    pub effective_control: usize,
}

/// Breadth-first CTR search (paper Fig. 4). Returns the shortest SWAP route
/// from `control` to any qubit adjacent to `target`, exploring neighbors in
/// ascending order so results are deterministic.
///
/// # Errors
///
/// Returns [`CompileError::RouteNotFound`] when target's component is
/// unreachable.
pub fn ctr_route(device: &Device, control: usize, target: usize) -> Result<CtrRoute, CompileError> {
    ctr_route_with(device, control, target, RoutingObjective::FewestSwaps)
}

/// [`ctr_route`] under a configurable [`RoutingObjective`].
///
/// # Errors
///
/// Returns [`CompileError::RouteNotFound`] when the target's component is
/// unreachable.
pub fn ctr_route_with(
    device: &Device,
    control: usize,
    target: usize,
    objective: RoutingObjective,
) -> Result<CtrRoute, CompileError> {
    match objective {
        RoutingObjective::HighestFidelity if device.has_error_data() => {
            ctr_route_fidelity(device, control, target)
        }
        _ => ctr_route_bfs(device, control, target),
    }
}

/// Dijkstra over negative log-fidelity of the SWAP chain plus the final
/// CNOT leg. Deterministic: ties break toward smaller node indices.
fn ctr_route_fidelity(
    device: &Device,
    control: usize,
    target: usize,
) -> Result<CtrRoute, CompileError> {
    if control == target {
        return Err(CompileError::UnmappedGate(format!(
            "degenerate CNOT: control equals target (q{control})"
        )));
    }
    let n = device.n_qubits();
    SCRATCH.with(|scratch| {
        let s = &mut *scratch.borrow_mut();
        s.dist.clear();
        s.dist.resize(n, f64::INFINITY);
        s.parent.clear();
        s.parent.resize(n, None);
        s.settled.clear();
        s.settled.resize(n, false);
        s.heap.clear();
        let key = |d: f64, q: usize| ((d * 1e9) as u64, q);
        s.dist[control] = 0.0;
        s.heap.push(std::cmp::Reverse(key(0.0, control)));
        let mut best: Option<(f64, usize)> = None;
        while let Some(std::cmp::Reverse((_, q))) = s.heap.pop() {
            if s.settled[q] {
                continue;
            }
            s.settled[q] = true;
            if let Some((bd, _)) = best {
                if s.dist[q] >= bd {
                    continue;
                }
            }
            if device.are_adjacent(q, target) {
                let total = s.dist[q] + cnot_log_cost(device, q, target);
                if best.is_none_or(|(bd, bq)| (total, q) < (bd, bq)) {
                    best = Some((total, q));
                }
            }
            for &nb in device.neighbors(q) {
                if nb == target {
                    continue; // the control never moves onto the target line
                }
                let nd = s.dist[q] + swap_log_cost(device, q, nb);
                if nd < s.dist[nb] {
                    s.dist[nb] = nd;
                    s.parent[nb] = Some(q);
                    s.heap.push(std::cmp::Reverse(key(nd, nb)));
                }
            }
        }
        let Some((_, stop)) = best else {
            return Err(CompileError::RouteNotFound { control, target });
        };
        let mut path = vec![stop];
        let mut cur = stop;
        while let Some(p) = s.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], control);
        Ok(CtrRoute {
            effective_control: stop,
            path,
        })
    })
}

fn ctr_route_bfs(device: &Device, control: usize, target: usize) -> Result<CtrRoute, CompileError> {
    if control == target {
        return Err(CompileError::UnmappedGate(format!(
            "degenerate CNOT: control equals target (q{control})"
        )));
    }
    if device.are_adjacent(control, target) {
        return Ok(CtrRoute {
            path: vec![control],
            effective_control: control,
        });
    }
    let n = device.n_qubits();
    SCRATCH.with(|scratch| {
        let s = &mut *scratch.borrow_mut();
        s.parent.clear();
        s.parent.resize(n, None);
        s.seen.clear();
        s.seen.resize(n, false);
        s.queue.clear();
        s.seen[control] = true;
        s.seen[target] = true; // the control never moves onto the target line
        s.queue.push_back(control);
        while let Some(q) = s.queue.pop_front() {
            for &nb in device.neighbors(q) {
                if s.seen[nb] {
                    continue;
                }
                s.seen[nb] = true;
                s.parent[nb] = Some(q);
                if device.are_adjacent(nb, target) {
                    // Reconstruct the path control -> ... -> nb.
                    let mut path = vec![nb];
                    let mut cur = nb;
                    while let Some(p) = s.parent[cur] {
                        path.push(p);
                        cur = p;
                    }
                    path.push(control);
                    path.dedup();
                    path.reverse();
                    return Ok(CtrRoute {
                        effective_control: nb,
                        path,
                    });
                }
                s.queue.push_back(nb);
            }
        }
        Err(CompileError::RouteNotFound { control, target })
    })
}

/// Emits a CNOT that is native on the device, inserting the Fig. 6
/// Hadamard reversal when only the opposite orientation is coupled.
///
/// # Errors
///
/// Returns [`CompileError::RouteNotFound`] if the qubits are not adjacent
/// at all (callers route first).
pub fn emit_adjacent_cnot(
    device: &Device,
    control: usize,
    target: usize,
    out: &mut Circuit,
) -> Result<(), CompileError> {
    if device.native() == qsyn_arch::TwoQubitNative::Cz {
        // CZ-native library: CNOT = H(t) CZ H(t); CZ is symmetric, so any
        // adjacent pair works and no orientation reversal ever arises.
        if !device.are_adjacent(control, target) {
            return Err(CompileError::RouteNotFound { control, target });
        }
        out.push(Gate::h(target));
        emit_adjacent_cz(device, control, target, out)?;
        out.push(Gate::h(target));
        return Ok(());
    }
    if device.has_coupling(control, target) {
        out.push(Gate::cx(control, target));
        Ok(())
    } else if device.has_coupling(target, control) {
        out.push(Gate::h(control));
        out.push(Gate::h(target));
        out.push(Gate::cx(target, control));
        out.push(Gate::h(control));
        out.push(Gate::h(target));
        Ok(())
    } else {
        Err(CompileError::RouteNotFound { control, target })
    }
}

/// Emits a native CZ between adjacent qubits, using the orientation listed
/// in the coupling map.
///
/// # Errors
///
/// Returns [`CompileError::RouteNotFound`] if the qubits are not adjacent,
/// or [`CompileError::UnmappedGate`] on a CNOT-native device (CZ is not in
/// the IBM library; decompose it instead).
pub fn emit_adjacent_cz(
    device: &Device,
    a: usize,
    b: usize,
    out: &mut Circuit,
) -> Result<(), CompileError> {
    if device.native() != qsyn_arch::TwoQubitNative::Cz {
        return Err(CompileError::UnmappedGate(format!("CZ q{a}, q{b}")));
    }
    if device.has_coupling(a, b) {
        out.push(Gate::cz(a, b));
        Ok(())
    } else if device.has_coupling(b, a) {
        out.push(Gate::cz(b, a));
        Ok(())
    } else {
        Err(CompileError::RouteNotFound {
            control: a,
            target: b,
        })
    }
}

/// Emits a SWAP between two *adjacent* qubits using the native CNOT
/// direction(s): three CNOTs when both orientations exist, otherwise three
/// CNOTs with one Hadamard-reversed leg — at most 7 gates, the bound the
/// paper states for unidirectional transmon couplings.
///
/// # Errors
///
/// Returns [`CompileError::RouteNotFound`] if the qubits are not adjacent.
pub fn emit_adjacent_swap(
    device: &Device,
    a: usize,
    b: usize,
    out: &mut Circuit,
) -> Result<(), CompileError> {
    if !device.are_adjacent(a, b) {
        return Err(CompileError::RouteNotFound {
            control: a,
            target: b,
        });
    }
    // SWAP(a,b) = CX(a,b) CX(b,a) CX(a,b); SWAP is symmetric, so lead with
    // the natively coupled orientation — only the middle CNOT then needs
    // the Hadamard reversal, for 7 gates total (paper's stated maximum).
    let (x, y) = if device.has_coupling(a, b) { (a, b) } else { (b, a) };
    emit_adjacent_cnot(device, x, y, out)?;
    emit_adjacent_cnot(device, y, x, out)?;
    emit_adjacent_cnot(device, x, y, out)
}

/// Emits a CNOT between arbitrary qubits: native, reversed, or rerouted
/// with CTR (SWAP out, execute, SWAP back).
///
/// # Errors
///
/// Returns [`CompileError::RouteNotFound`] on a disconnected coupling map.
pub fn emit_cnot(
    device: &Device,
    control: usize,
    target: usize,
    out: &mut Circuit,
) -> Result<(), CompileError> {
    emit_cnot_with(device, control, target, RoutingObjective::FewestSwaps, out)
}

/// [`emit_cnot`] under a configurable [`RoutingObjective`].
///
/// # Errors
///
/// Returns [`CompileError::RouteNotFound`] on a disconnected coupling map.
pub fn emit_cnot_with(
    device: &Device,
    control: usize,
    target: usize,
    objective: RoutingObjective,
    out: &mut Circuit,
) -> Result<(), CompileError> {
    let route = ctr_route_with(device, control, target, objective)?;
    emit_cnot_via(device, &route, target, out)
}

/// What the router did to a circuit: how many gates needed a reroute and
/// how many adjacent SWAPs that took (the trace layer reports these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteCounters {
    /// Adjacent SWAPs emitted across all reroutes (out- and back-legs).
    pub swaps_inserted: usize,
    /// Two-qubit gates that needed at least one SWAP to become adjacent.
    pub gates_rerouted: usize,
}

impl RouteCounters {
    fn record(&mut self, route: &CtrRoute) {
        let hops = route.path.len().saturating_sub(1);
        if hops > 0 {
            self.gates_rerouted += 1;
            self.swaps_inserted += 2 * hops; // SWAP out and SWAP back
        }
    }
}

/// Legalizes every two-qubit gate of a technology-ready circuit against
/// the device coupling map. One-qubit gates pass through unchanged.
///
/// This is *the* routing entry point for callers that do not need to pick
/// a strategy: it runs the paper's CTR router
/// ([`CtrStrategy`](crate::CtrStrategy)) through the
/// [`RoutingStrategy`](crate::RoutingStrategy) trait, against the shared
/// precomputed routing table for the device. For a different objective,
/// a SWAP cap, per-route counters, or a second-generation router, build a
/// [`RouteRequest`](crate::RouteRequest) and call a strategy directly —
/// the historical `route_circuit_with`/`route_circuit_traced`/
/// `route_circuit_bounded*` family collapsed into that API.
///
/// # Errors
///
/// Returns [`CompileError::UnmappedGate`] if a multi-qubit gate other than
/// CNOT (or CZ on a CZ-native device) is present (run decomposition
/// first), or [`CompileError::RouteNotFound`] on a disconnected map.
pub fn route_circuit(circuit: &Circuit, device: &Device) -> Result<Circuit, CompileError> {
    use crate::strategy::{RouteRequest, RoutingStrategy};
    let (table, _) = crate::cache::routing_table(device, RoutingObjective::FewestSwaps);
    let req = RouteRequest::new(circuit, device).with_table(table);
    crate::strategy::CtrStrategy.route(&req).map(|o| o.circuit)
}

/// CTR routing under an objective and optional SWAP cap, resolving the
/// shared [`RoutingTable`](crate::cache::RoutingTable) from the registry.
pub(crate) fn route_bounded(
    circuit: &Circuit,
    device: &Device,
    objective: RoutingObjective,
    max_swaps: Option<usize>,
) -> Result<(Circuit, RouteCounters), CompileError> {
    let (table, _) = crate::cache::routing_table(device, objective);
    route_bounded_via(circuit, device, &table, max_swaps)
}

/// CTR routing running the legacy per-gate search instead of a shared
/// [`RoutingTable`](crate::cache::RoutingTable).
///
/// The table path is byte-identical to this one (the table stores exactly
/// what these searches return); this entry point exists so differential
/// tests and benchmarks can compare the two directly, and for
/// [`CacheMode::Off`](crate::cache::CacheMode::Off).
pub(crate) fn route_bounded_uncached(
    circuit: &Circuit,
    device: &Device,
    objective: RoutingObjective,
    max_swaps: Option<usize>,
) -> Result<(Circuit, RouteCounters), CompileError> {
    route_circuit_bounded_impl(circuit, device, max_swaps, |control, target| {
        ctr_route_with(device, control, target, objective)
    })
}

/// CTR routing against an explicit precomputed
/// [`RoutingTable`](crate::cache::RoutingTable) (the compiler fetches the
/// shared table once per compile and passes it here).
pub(crate) fn route_bounded_via(
    circuit: &Circuit,
    device: &Device,
    table: &crate::cache::RoutingTable,
    max_swaps: Option<usize>,
) -> Result<(Circuit, RouteCounters), CompileError> {
    debug_assert_eq!(table.n_qubits(), device.n_qubits(), "table/device mismatch");
    route_circuit_bounded_impl(circuit, device, max_swaps, |control, target| {
        table.route(control, target)
    })
}

/// CTR routing against a sparse [`DistanceOracle`](crate::cache::DistanceOracle):
/// per-pair routes are searched on first touch and memoized, so no `n²`
/// table is ever materialized. Byte-identical to [`route_bounded_via`]
/// because the oracle memoizes the very same per-pair search.
pub(crate) fn route_bounded_via_oracle(
    circuit: &Circuit,
    device: &Device,
    oracle: &crate::cache::DistanceOracle,
    max_swaps: Option<usize>,
) -> Result<(Circuit, RouteCounters), CompileError> {
    debug_assert_eq!(oracle.n_qubits(), device.n_qubits(), "oracle/device mismatch");
    route_circuit_bounded_impl(circuit, device, max_swaps, |control, target| {
        oracle.route(control, target)
    })
}

/// Deprecated compatibility alias for the pre-strategy bounded router.
///
/// # Errors
///
/// See [`route_circuit`], plus [`CompileError::BudgetExceeded`] on a blown
/// cap.
#[doc(hidden)]
#[deprecated(
    since = "0.6.0",
    note = "use a RoutingStrategy (CtrStrategy) with a RouteRequest instead"
)]
pub fn route_circuit_bounded(
    circuit: &Circuit,
    device: &Device,
    objective: RoutingObjective,
    max_swaps: Option<usize>,
) -> Result<(Circuit, RouteCounters), CompileError> {
    route_bounded(circuit, device, objective, max_swaps)
}

/// Deprecated compatibility alias for the pre-strategy uncached router.
///
/// # Errors
///
/// See [`route_circuit`], plus [`CompileError::BudgetExceeded`] on a blown
/// cap.
#[doc(hidden)]
#[deprecated(
    since = "0.6.0",
    note = "use CtrStrategy with a table-less RouteRequest instead"
)]
pub fn route_circuit_bounded_uncached(
    circuit: &Circuit,
    device: &Device,
    objective: RoutingObjective,
    max_swaps: Option<usize>,
) -> Result<(Circuit, RouteCounters), CompileError> {
    route_bounded_uncached(circuit, device, objective, max_swaps)
}

/// Deprecated compatibility alias for the pre-strategy table router.
///
/// # Errors
///
/// See [`route_circuit`], plus [`CompileError::BudgetExceeded`] on a blown
/// cap.
#[doc(hidden)]
#[deprecated(
    since = "0.6.0",
    note = "use CtrStrategy with RouteRequest::with_table instead"
)]
pub fn route_circuit_bounded_via(
    circuit: &Circuit,
    device: &Device,
    table: &crate::cache::RoutingTable,
    max_swaps: Option<usize>,
) -> Result<(Circuit, RouteCounters), CompileError> {
    route_bounded_via(circuit, device, table, max_swaps)
}

/// The shared routing loop; `route_for` yields the CTR route per two-qubit
/// gate, either borrowed from a table or freshly searched.
fn route_circuit_bounded_impl<R, F>(
    circuit: &Circuit,
    device: &Device,
    max_swaps: Option<usize>,
    mut route_for: F,
) -> Result<(Circuit, RouteCounters), CompileError>
where
    R: std::borrow::Borrow<CtrRoute>,
    F: FnMut(usize, usize) -> Result<R, CompileError>,
{
    let mut out = Circuit::new(device.n_qubits());
    if let Some(name) = circuit.name() {
        out.set_name(name.to_string());
    }
    let mut counters = RouteCounters::default();
    let check_cap = |counters: &RouteCounters| -> Result<(), CompileError> {
        match max_swaps {
            Some(cap) if counters.swaps_inserted > cap => Err(CompileError::BudgetExceeded {
                pass: qsyn_trace::Pass::Route,
                resource: crate::budget::BudgetResource::RouteSwaps,
                limit: cap as u64,
                used: counters.swaps_inserted as u64,
            }),
            _ => Ok(()),
        }
    };
    for g in circuit.gates() {
        match g {
            Gate::Single { .. } => out.push(g.clone()),
            Gate::Cx { control, target } => {
                let route = route_for(*control, *target)?;
                counters.record(route.borrow());
                check_cap(&counters)?;
                emit_cnot_via(device, route.borrow(), *target, &mut out)?;
            }
            Gate::Cz { control, target }
                if device.native() == qsyn_arch::TwoQubitNative::Cz =>
            {
                let route = route_for(*control, *target)?;
                counters.record(route.borrow());
                check_cap(&counters)?;
                emit_cz_via(device, route.borrow(), *target, &mut out)?;
            }
            other => return Err(CompileError::UnmappedGate(other.to_string())),
        }
    }
    Ok((out, counters))
}

/// Emits a CNOT along an already-computed route: SWAP out, execute the
/// (possibly reversed) CNOT, SWAP back.
fn emit_cnot_via(
    device: &Device,
    route: &CtrRoute,
    target: usize,
    out: &mut Circuit,
) -> Result<(), CompileError> {
    for w in route.path.windows(2) {
        emit_adjacent_swap(device, w[0], w[1], out)?;
    }
    emit_adjacent_cnot(device, route.effective_control, target, out)?;
    for w in route.path.windows(2).rev() {
        emit_adjacent_swap(device, w[0], w[1], out)?;
    }
    Ok(())
}

/// Emits a CZ along an already-computed route (CZ-native devices).
fn emit_cz_via(
    device: &Device,
    route: &CtrRoute,
    target: usize,
    out: &mut Circuit,
) -> Result<(), CompileError> {
    for w in route.path.windows(2) {
        emit_adjacent_swap(device, w[0], w[1], out)?;
    }
    emit_adjacent_cz(device, route.effective_control, target, out)?;
    for w in route.path.windows(2).rev() {
        emit_adjacent_swap(device, w[0], w[1], out)?;
    }
    Ok(())
}

/// Emits a CZ between arbitrary qubits of a CZ-native device: native when
/// adjacent, otherwise rerouted with CTR (SWAP out, execute, SWAP back —
/// CZ's symmetry means either operand may travel; the search starts from
/// `a`).
///
/// # Errors
///
/// Returns [`CompileError::RouteNotFound`] on a disconnected coupling map
/// or [`CompileError::UnmappedGate`] on a CNOT-native device.
pub fn emit_cz_with(
    device: &Device,
    a: usize,
    b: usize,
    objective: RoutingObjective,
    out: &mut Circuit,
) -> Result<(), CompileError> {
    if device.native() != qsyn_arch::TwoQubitNative::Cz {
        return Err(CompileError::UnmappedGate(format!("CZ q{a}, q{b}")));
    }
    let route = ctr_route_with(device, a, b, objective)?;
    emit_cz_via(device, &route, b, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;
    use qsyn_qmdd::circuits_equal;

    #[test]
    fn fig5_ibmqx3_q5_to_q10_routes_via_q12_q11() {
        // The paper's worked example: CNOT control q5, target q10 on
        // ibmqx3 needs two swaps, first q5<->q12, then q12<->q11.
        let d = devices::ibmqx3();
        let r = ctr_route(&d, 5, 10).unwrap();
        assert_eq!(r.path, vec![5, 12, 11]);
        assert_eq!(r.effective_control, 11);
    }

    #[test]
    fn adjacent_pairs_need_no_route() {
        let d = devices::ibmqx2();
        let r = ctr_route(&d, 0, 1).unwrap();
        assert_eq!(r.path, vec![0]);
        let r = ctr_route(&d, 1, 0).unwrap(); // reverse orientation counts
        assert_eq!(r.path, vec![1]);
    }

    #[test]
    fn native_cnot_is_one_gate() {
        let d = devices::ibmqx2();
        let mut out = Circuit::new(5);
        emit_adjacent_cnot(&d, 0, 1, &mut out).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn fig6_reversal_is_five_gates_and_correct() {
        let d = devices::ibmqx2();
        let mut out = Circuit::new(5);
        emit_adjacent_cnot(&d, 1, 0, &mut out).unwrap(); // only 0->1 native
        assert_eq!(out.len(), 5);
        assert_eq!(out.stats().cnot_count, 1);
        let mut spec = Circuit::new(5);
        spec.push(Gate::cx(1, 0));
        assert!(circuits_equal(&spec, &out));
    }

    #[test]
    fn unidirectional_swap_is_seven_gates_and_correct() {
        let d = devices::ibmqx2();
        let mut out = Circuit::new(5);
        emit_adjacent_swap(&d, 0, 1, &mut out).unwrap();
        assert_eq!(out.len(), 7, "paper: max 7 gates per SWAP");
        let mut spec = Circuit::new(5);
        spec.push(Gate::swap(0, 1));
        assert!(circuits_equal(&spec, &out));
    }

    #[test]
    fn rerouted_cnot_preserves_semantics_and_assignment() {
        let d = devices::ibmqx3();
        let mut out = Circuit::new(16);
        emit_cnot(&d, 5, 10, &mut out).unwrap();
        let mut spec = Circuit::new(16);
        spec.push(Gate::cx(5, 10));
        assert!(circuits_equal(&spec, &out));
        // Every CNOT in the output respects the coupling map.
        for g in out.gates() {
            if let Gate::Cx { control, target } = g {
                assert!(d.has_coupling(*control, *target), "illegal {g}");
            }
        }
    }

    #[test]
    fn route_circuit_legalizes_everything() {
        let d = devices::ibmqx4();
        let mut c = Circuit::new(5);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 4));
        c.push(Gate::t(2));
        c.push(Gate::cx(4, 1));
        let routed = route_circuit(&c, &d).unwrap();
        assert!(circuits_equal(&c, &routed));
        for g in routed.gates() {
            if let Gate::Cx { control, target } = g {
                assert!(d.has_coupling(*control, *target));
            }
        }
    }

    #[test]
    fn traced_routing_counts_swaps_and_matches_untraced() {
        let d = devices::ibmqx3();
        let mut c = Circuit::new(16);
        c.push(Gate::h(0));
        c.push(Gate::cx(5, 10)); // the Fig. 5 reroute: 2 hops
        c.push(Gate::cx(0, 1)); // adjacent: no swaps
        let (traced, counters) =
            route_bounded(&c, &d, RoutingObjective::FewestSwaps, None).unwrap();
        let plain = route_circuit(&c, &d).unwrap();
        assert_eq!(traced, plain, "tracing must not change the output");
        assert_eq!(counters.gates_rerouted, 1);
        assert_eq!(counters.swaps_inserted, 4, "2 hops out + 2 hops back");
    }

    #[test]
    fn adjacent_only_circuit_counts_zero_swaps() {
        let d = devices::ibmqx2();
        let mut c = Circuit::new(5);
        c.push(Gate::cx(0, 1));
        let (_, counters) = route_bounded(&c, &d, RoutingObjective::FewestSwaps, None).unwrap();
        assert_eq!(counters, RouteCounters::default());
    }

    #[test]
    fn route_rejects_unmapped_gates() {
        let d = devices::ibmqx2();
        let mut c = Circuit::new(5);
        c.push(Gate::toffoli(0, 1, 2));
        assert!(matches!(
            route_circuit(&c, &d),
            Err(CompileError::UnmappedGate(_))
        ));
    }

    #[test]
    fn disconnected_map_reports_route_not_found() {
        let d = Device::from_coupling_map("disc", 4, &[(0, &[1]), (2, &[3])]);
        let err = ctr_route(&d, 0, 3).unwrap_err();
        assert_eq!(
            err,
            CompileError::RouteNotFound {
                control: 0,
                target: 3
            }
        );
    }

    #[test]
    fn route_never_moves_control_onto_target() {
        // A line graph where the only path from 0 to 2's neighborhood is
        // through 1: control stops next to the target, not on it.
        let d = Device::from_coupling_map("line", 4, &[(0, &[1]), (1, &[2]), (2, &[3])]);
        let r = ctr_route(&d, 0, 3).unwrap();
        assert!(!r.path.contains(&3));
        assert_eq!(r.path, vec![0, 1, 2]);
    }

    /// A device with a short noisy path 0-1-3 and a long clean path
    /// 0-2-4-3 between qubits 0 and 3.
    fn noisy_diamond() -> Device {
        Device::from_coupling_map(
            "diamond",
            5,
            &[(0, &[1, 2]), (1, &[3]), (2, &[4]), (4, &[3])],
        )
        .with_cnot_errors([
            ((0, 1), 0.20),
            ((1, 3), 0.20),
            ((0, 2), 0.001),
            ((2, 4), 0.001),
            ((4, 3), 0.001),
        ])
    }

    #[test]
    fn fewest_swaps_takes_the_short_path() {
        let d = noisy_diamond();
        let r = ctr_route_with(&d, 0, 3, RoutingObjective::FewestSwaps).unwrap();
        assert_eq!(r.path, vec![0, 1]);
        assert_eq!(r.effective_control, 1);
    }

    #[test]
    fn fidelity_routing_takes_the_clean_path() {
        let d = noisy_diamond();
        let r = ctr_route_with(&d, 0, 3, RoutingObjective::HighestFidelity).unwrap();
        assert_eq!(r.path, vec![0, 2, 4]);
        assert_eq!(r.effective_control, 4);
        // Both routes produce equivalent circuits.
        let mut fast = Circuit::new(5);
        emit_cnot_with(&d, 0, 3, RoutingObjective::FewestSwaps, &mut fast).unwrap();
        let mut clean = Circuit::new(5);
        emit_cnot_with(&d, 0, 3, RoutingObjective::HighestFidelity, &mut clean).unwrap();
        assert!(circuits_equal(&fast, &clean));
    }

    #[test]
    fn fidelity_routing_without_data_falls_back_to_bfs() {
        let d = devices::ibmqx3(); // no characterization data
        let bfs = ctr_route_with(&d, 5, 10, RoutingObjective::FewestSwaps).unwrap();
        let fid = ctr_route_with(&d, 5, 10, RoutingObjective::HighestFidelity).unwrap();
        assert_eq!(bfs, fid);
    }

    #[test]
    fn fidelity_routing_with_uniform_errors_matches_hop_counts() {
        // Uniform annotations: the cheapest-log-fidelity path is a
        // shortest path, so path lengths agree even if routes differ.
        let mut d = devices::ibmqx5();
        let pairs: Vec<(usize, usize)> = d.couplings().collect();
        for (c, t) in pairs {
            d.set_cnot_error(c, t, 0.02);
        }
        for (control, target) in [(0usize, 7usize), (5, 14), (9, 2)] {
            let bfs = ctr_route_with(&d, control, target, RoutingObjective::FewestSwaps).unwrap();
            let fid =
                ctr_route_with(&d, control, target, RoutingObjective::HighestFidelity).unwrap();
            assert_eq!(bfs.path.len(), fid.path.len(), "{control}->{target}");
        }
    }

    #[test]
    fn cz_native_device_emits_cz_primitives() {
        use qsyn_arch::TwoQubitNative;
        let d = devices::ring(6).with_native(TwoQubitNative::Cz);
        let mut c = Circuit::new(6);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1)); // adjacent: H t, CZ, H t
        c.push(Gate::cx(0, 3)); // distant: swaps + CZ legs
        c.push(Gate::cz(2, 5)); // native CZ, distant
        let routed = route_circuit(&c, &d).unwrap();
        assert!(circuits_equal(&c, &routed));
        for g in routed.gates() {
            assert!(d.supports(g), "unsupported {g}");
            assert!(!matches!(g, Gate::Cx { .. }), "no CNOT on a CZ device");
        }
    }

    #[test]
    fn cz_rejected_on_cnot_native_device() {
        let d = devices::ibmqx2();
        let mut out = Circuit::new(5);
        assert!(matches!(
            emit_adjacent_cz(&d, 0, 1, &mut out),
            Err(CompileError::UnmappedGate(_))
        ));
        let mut c = Circuit::new(5);
        c.push(Gate::cz(0, 1));
        assert!(route_circuit(&c, &d).is_err());
    }

    #[test]
    fn long_reroute_on_qc96_verifies() {
        let d = devices::qc96();
        let mut out = Circuit::new(96);
        emit_cnot(&d, 5, 45, &mut out).unwrap();
        let mut spec = Circuit::new(96);
        spec.push(Gate::cx(5, 45));
        // Wide register: use the miter strategy.
        assert!(qsyn_qmdd::equivalent_miter(&spec, &out).equivalent);
    }

    #[test]
    fn degenerate_cnot_is_an_error_not_a_panic() {
        let d = devices::ibmqx4();
        for objective in [
            RoutingObjective::FewestSwaps,
            RoutingObjective::HighestFidelity,
        ] {
            match ctr_route_with(&d, 2, 2, objective) {
                Err(CompileError::UnmappedGate(msg)) => {
                    assert!(msg.contains("control equals target"), "{msg}")
                }
                other => panic!("expected UnmappedGate, got {other:?}"),
            }
        }
    }

    #[test]
    fn swap_cap_aborts_with_budget_exceeded() {
        let d = devices::ibmqx3();
        let mut c = Circuit::new(16);
        c.push(Gate::cx(5, 10)); // distant pair: needs several SWAPs
        let (_, counters) =
            route_bounded(&c, &d, RoutingObjective::FewestSwaps, None).unwrap();
        assert!(counters.swaps_inserted >= 2);
        // A cap below the real requirement trips the budget...
        match route_bounded(&c, &d, RoutingObjective::FewestSwaps, Some(1)) {
            Err(CompileError::BudgetExceeded {
                pass,
                resource,
                limit,
                used,
            }) => {
                assert_eq!(pass, qsyn_trace::Pass::Route);
                assert_eq!(resource, crate::budget::BudgetResource::RouteSwaps);
                assert_eq!(limit, 1);
                assert!(used > 1);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // ...while a generous cap matches the uncapped result.
        let (bounded, bc) =
            route_bounded(&c, &d, RoutingObjective::FewestSwaps, Some(1000)).unwrap();
        let (free, fc) = route_bounded(&c, &d, RoutingObjective::FewestSwaps, None).unwrap();
        assert_eq!(bounded.gates().len(), free.gates().len());
        assert_eq!(bc.swaps_inserted, fc.swaps_inserted);
    }
}
