//! Malformed-input corpus for the circuit parsers.
//!
//! Every parser front-end (`.qasm`, `.qc`, `.real`) must reject broken
//! input with a `ParseCircuitError` — never a panic. The corpus covers
//! byte-level truncations of valid sources (a partially written or
//! corrupted file), duplicate/out-of-range operand lines, and outright
//! garbage. Each case runs under `catch_unwind` so a panicking parser
//! names the offending input instead of aborting the whole suite.

use qsyn_circuit::Circuit;
use std::panic::{catch_unwind, AssertUnwindSafe};

const QASM_SEED: &str = "OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cz q[1],q[2];
swap q[2],q[3];
ccx q[0],q[1],q[2];
t q[3];
tdg q[3];
";

const QC_SEED: &str = ".v a b c d
.i a b c
.o d
BEGIN
H a
tof a b c
tof a b c d
cnot a b
swap c d
cz a d
T* b
END
";

const REAL_SEED: &str = ".version 2.0
.numvars 4
.variables a b c d
.begin
t1 d
t2 a d
t3 a b d
t2 -a d
f2 a b
f3 a b c
.end
";

/// Runs a parser over one input, distinguishing "clean result" from
/// "panic". Returns an error message naming the input on panic.
fn assert_no_panic<F>(format: &str, label: &str, input: &str, parse: F)
where
    F: FnOnce(&str) -> Result<Circuit, qsyn_circuit::ParseCircuitError>,
{
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = parse(input);
    }));
    assert!(
        outcome.is_ok(),
        "{format} parser panicked on {label}: {input:?}"
    );
}

/// Truncation corpus: every char-boundary prefix of the seed. A torn file
/// must parse or error, never panic.
fn truncations(seed: &str) -> Vec<String> {
    let mut out: Vec<String> = seed
        .char_indices()
        .map(|(i, _)| seed[..i].to_string())
        .collect();
    out.push(seed.to_string());
    out
}

fn garbage() -> Vec<String> {
    vec![
        String::new(),
        " \t \n ".into(),
        "\u{0}\u{1}\u{2}binary trash".into(),
        "%!PS-Adobe postscript, not a circuit".into(),
        "{\"json\": \"also not a circuit\"}".into(),
        "\u{fe0f}\u{1f600} emoji soup \u{1f4a5}".into(),
        "-".repeat(512),
        "9".repeat(64),
    ]
}

#[test]
fn qasm_truncations_and_garbage_never_panic() {
    for (k, input) in truncations(QASM_SEED).iter().chain(garbage().iter()).enumerate() {
        assert_no_panic("qasm", &format!("case {k}"), input, Circuit::from_qasm);
    }
}

#[test]
fn qc_truncations_and_garbage_never_panic() {
    for (k, input) in truncations(QC_SEED).iter().chain(garbage().iter()).enumerate() {
        assert_no_panic("qc", &format!("case {k}"), input, Circuit::from_qc);
    }
}

#[test]
fn real_truncations_and_garbage_never_panic() {
    for (k, input) in truncations(REAL_SEED).iter().chain(garbage().iter()).enumerate() {
        assert_no_panic("real", &format!("case {k}"), input, Circuit::from_real);
    }
}

#[test]
fn qasm_duplicate_operands_are_parse_errors() {
    for line in [
        "cx q[0],q[0];",
        "cz q[1],q[1];",
        "swap q[2],q[2];",
        "ccx q[0],q[1],q[0];",
        "ccx q[0],q[0],q[1];",
    ] {
        let src = format!("OPENQASM 2.0;\nqreg q[4];\n{line}\n");
        let err = Circuit::from_qasm(&src);
        assert!(err.is_err(), "accepted duplicate operands: {line}");
    }
}

#[test]
fn qc_duplicate_operands_are_parse_errors() {
    for line in ["cnot a a", "swap b b", "cz c c", "tof a a", "tof a b a", "tof a a b"] {
        let src = format!(".v a b c\nBEGIN\n{line}\nEND\n");
        let err = Circuit::from_qc(&src);
        assert!(err.is_err(), "accepted duplicate operands: {line}");
    }
}

#[test]
fn real_duplicate_operands_are_parse_errors() {
    for line in ["t2 a a", "t3 a b a", "t3 a a b", "f2 b b", "f3 a c c", "f3 a a c"] {
        let src = format!(".numvars 3\n.variables a b c\n{line}\n");
        let err = Circuit::from_real(&src);
        assert!(err.is_err(), "accepted duplicate operands: {line}");
    }
}

#[test]
fn real_variables_beyond_numvars_are_parse_errors() {
    // `.variables` declares more names than `.numvars` admits; touching an
    // excess line must be a parse error, not a register-width panic.
    let src = ".numvars 1\n.variables a b\nt2 a b\n";
    let err = Circuit::from_real(src);
    assert!(err.is_err(), "accepted out-of-range .variables line");
    // An excess name that no gate touches stays harmless.
    let ok = Circuit::from_real(".numvars 1\n.variables a b\nt1 a\n");
    assert!(ok.is_ok());
}

#[test]
fn qasm_out_of_range_register_index_is_a_parse_error() {
    let src = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[7];\n";
    assert!(Circuit::from_qasm(src).is_err());
}
