//! Canonical 128-bit structural hashing of circuits.
//!
//! The compile cache keys on *content*: two circuits with the same register
//! width and the same gate list hash identically regardless of their names,
//! while any structural difference — an extra gate, a swapped operand, a
//! different operator — changes the digest. The hash is a hand-rolled
//! FNV-1a over a fixed byte encoding (no dependency, no platform
//! variation), wide enough (128 bits) that accidental collisions are out
//! of reach for any realistic workload.

use crate::circuit::Circuit;
use qsyn_gate::Gate;

/// FNV-1a offset basis for the 128-bit variant.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a prime for the 128-bit variant.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a hasher.
///
/// Used for circuit structural hashes, device fingerprints and compile
/// cache keys; everything funnels through [`Fnv128::write`] so the digest
/// depends only on the byte stream, never on container iteration order
/// (callers feed sorted/deterministic views).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv128 {
    /// Starts a fresh digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feeds one byte (enum discriminants, small tags).
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to 64 bits (stable across word sizes).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a `u128` in little-endian byte order (for chaining digests).
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern (exact, no rounding).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string as its length-prefixed UTF-8 bytes (length prefixing
    /// keeps `("ab", "c")` distinct from `("a", "bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// Byte tags of the gate encoding fed to the hasher. Appending variants is
/// fine; reordering would silently change every digest.
fn write_gate(h: &mut Fnv128, gate: &Gate) {
    match gate {
        Gate::Single { op, qubit } => {
            h.write_u8(0);
            // SingleOp is Ord; its position in the fixed library table is a
            // stable discriminant.
            let op_idx = qsyn_gate::SINGLE_OPS
                .iter()
                .position(|o| o == op)
                .expect("SINGLE_OPS lists every operator");
            h.write_u8(op_idx as u8);
            h.write_usize(*qubit);
        }
        Gate::Cx { control, target } => {
            h.write_u8(1);
            h.write_usize(*control);
            h.write_usize(*target);
        }
        Gate::Cz { control, target } => {
            h.write_u8(2);
            h.write_usize(*control);
            h.write_usize(*target);
        }
        Gate::Swap { a, b } => {
            h.write_u8(3);
            h.write_usize(*a);
            h.write_usize(*b);
        }
        Gate::Mct { controls, target } => {
            h.write_u8(4);
            h.write_usize(controls.len());
            for c in controls {
                h.write_usize(*c);
            }
            h.write_usize(*target);
        }
    }
}

/// Canonical structural hash of a circuit: register width plus the ordered
/// gate list. The circuit's *name* is deliberately excluded — it is
/// presentation metadata, and content-addressed caches must treat a
/// renamed copy as the same circuit.
pub fn structural_hash(circuit: &Circuit) -> u128 {
    let mut h = Fnv128::new();
    h.write_usize(circuit.n_qubits());
    h.write_usize(circuit.len());
    for g in circuit.gates() {
        write_gate(&mut h, g);
    }
    h.finish()
}

impl Circuit {
    /// Canonical 128-bit structural hash (see
    /// [`structural_hash`](crate::structural_hash)): width + gate list,
    /// name excluded.
    pub fn structural_hash(&self) -> u128 {
        structural_hash(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Standard FNV-1a 128 test vectors.
        let digest = |s: &str| {
            let mut h = Fnv128::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), FNV128_OFFSET);
        assert_eq!(digest("a"), 0xd228cb696f1a8caf78912b704e4a8964);
    }

    #[test]
    fn hash_ignores_the_name() {
        let mut a = Circuit::new(3);
        a.push(Gate::toffoli(0, 1, 2));
        let b = a.clone().with_name("renamed");
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn hash_distinguishes_structure() {
        let mut base = Circuit::new(3);
        base.push(Gate::cx(0, 1));
        let h0 = base.structural_hash();

        // Extra gate.
        let mut wider = base.clone();
        wider.push(Gate::t(2));
        assert_ne!(h0, wider.structural_hash());

        // Swapped operands.
        let mut flipped = Circuit::new(3);
        flipped.push(Gate::cx(1, 0));
        assert_ne!(h0, flipped.structural_hash());

        // Different operator on the same line.
        let mut cz = Circuit::new(3);
        cz.push(Gate::cz(0, 1));
        assert_ne!(h0, cz.structural_hash());

        // Same gates, different register width.
        let mut narrow = Circuit::new(2);
        narrow.push(Gate::cx(0, 1));
        assert_ne!(h0, narrow.structural_hash());
    }

    #[test]
    fn gate_order_matters() {
        let mut ab = Circuit::new(2);
        ab.push(Gate::h(0));
        ab.push(Gate::t(1));
        let mut ba = Circuit::new(2);
        ba.push(Gate::t(1));
        ba.push(Gate::h(0));
        assert_ne!(ab.structural_hash(), ba.structural_hash());
    }

    #[test]
    fn single_op_discriminants_are_distinct() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for op in qsyn_gate::SINGLE_OPS {
            let mut c = Circuit::new(1);
            c.push(Gate::Single { op, qubit: 0 });
            assert!(seen.insert(c.structural_hash()), "{op:?} collided");
        }
    }

    #[test]
    fn mct_control_list_is_length_prefixed() {
        // Without the length prefix, controls [1,2] target 3 could collide
        // with controls [1,2,3] target under a shifted read.
        let mut a = Circuit::new(5);
        a.push(Gate::mct(vec![0, 1], 2));
        let mut b = Circuit::new(5);
        b.push(Gate::mct(vec![0, 1, 2], 3));
        assert_ne!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn empty_circuits_of_equal_width_agree() {
        assert_eq!(
            Circuit::new(4).structural_hash(),
            Circuit::new(4).with_name("x").structural_hash()
        );
    }
}
