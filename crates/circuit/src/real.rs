//! The RevLib `.real` reversible circuit format.
//!
//! Grammar subset (RevLib specification 2.0):
//!
//! ```text
//! .version 2.0
//! .numvars 4
//! .variables a b c d
//! .inputs / .outputs / .constants / .garbage      (informational)
//! .begin
//! t1 d            NOT on d
//! t2 a d          CNOT control a, target d
//! t3 a b d        Toffoli, last operand target
//! t5 a b c e d    generalized Toffoli
//! t2 -a d         negative control: expanded to X a; t2 a d; X a
//! f2 a b          SWAP
//! f3 a b c        Fredkin (controlled SWAP), first operand control
//! .end
//! ```
//!
//! Negative controls and Fredkin gates are expanded at parse time into the
//! NCT + SWAP vocabulary of [`Gate`], so downstream passes never see them.

use crate::circuit::Circuit;
use crate::error::ParseCircuitError;
use qsyn_gate::Gate;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses RevLib `.real` source into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseCircuitError`] on unknown mnemonics, arity mismatches,
/// undeclared variables, or a missing `.numvars` header.
pub fn parse_real(src: &str) -> Result<Circuit, ParseCircuitError> {
    let mut numvars: Option<usize> = None;
    let mut vars: HashMap<String, usize> = HashMap::new();
    let mut gates: Vec<Gate> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().expect("non-empty line");
        let rest: Vec<&str> = toks.collect();
        match head {
            ".version" | ".inputs" | ".outputs" | ".constants" | ".garbage" | ".begin"
            | ".end" | ".inputbus" | ".outputbus" | ".state" | ".module" => {}
            ".numvars" => {
                let n: usize = rest
                    .first()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ParseCircuitError::new(lineno, "bad .numvars"))?;
                numvars = Some(n);
            }
            ".variables" => {
                for v in rest {
                    vars.insert(v.to_string(), vars.len());
                }
            }
            mnemonic => {
                let n = numvars
                    .ok_or_else(|| ParseCircuitError::new(lineno, "gate before .numvars"))?;
                if vars.is_empty() {
                    // Default variable names x0..x{n-1} when .variables absent.
                    for i in 0..n {
                        vars.insert(format!("x{i}"), i);
                    }
                }
                parse_real_gate(mnemonic, &rest, &vars, n, lineno, &mut gates)?;
            }
        }
    }
    let n = numvars.ok_or_else(|| ParseCircuitError::new(0, "missing .numvars"))?;
    Ok(Circuit::from_gates(n, gates))
}

/// A line operand, possibly carrying a RevLib negative-control marker.
struct Operand {
    index: usize,
    negated: bool,
}

fn lookup(
    tok: &str,
    vars: &HashMap<String, usize>,
    lineno: usize,
) -> Result<Operand, ParseCircuitError> {
    let (negated, name) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let index = vars
        .get(name)
        .copied()
        .ok_or_else(|| ParseCircuitError::new(lineno, format!("unknown variable `{name}`")))?;
    Ok(Operand { index, negated })
}

fn parse_real_gate(
    mnemonic: &str,
    rest: &[&str],
    vars: &HashMap<String, usize>,
    numvars: usize,
    lineno: usize,
    gates: &mut Vec<Gate>,
) -> Result<(), ParseCircuitError> {
    let ops: Vec<Operand> = rest
        .iter()
        .map(|t| lookup(t, vars, lineno))
        .collect::<Result<_, _>>()?;
    // `.variables` may (erroneously) declare more names than `.numvars`
    // lines exist; a gate touching one of the excess lines is a malformed
    // input, and reversible gates always act on distinct lines. Both must
    // surface as parse errors, never as downstream register panics.
    for (i, o) in ops.iter().enumerate() {
        if o.index >= numvars {
            return Err(ParseCircuitError::new(
                lineno,
                format!("operand line {} exceeds .numvars {numvars}", o.index),
            ));
        }
        if ops[..i].iter().any(|p| p.index == o.index) {
            return Err(ParseCircuitError::new(
                lineno,
                format!("`{mnemonic}` repeats an operand line"),
            ));
        }
    }
    let arity_check = |want: usize| -> Result<(), ParseCircuitError> {
        if ops.len() == want {
            Ok(())
        } else {
            Err(ParseCircuitError::new(
                lineno,
                format!("`{mnemonic}` expects {want} operands, got {}", ops.len()),
            ))
        }
    };

    // Wrap negative controls in X pairs.
    let negated: Vec<usize> = ops
        .iter()
        .filter(|o| o.negated)
        .map(|o| o.index)
        .collect();
    for &q in &negated {
        gates.push(Gate::x(q));
    }

    let first = mnemonic.chars().next().unwrap_or(' ');
    let arity: Option<usize> = mnemonic.get(1..).and_then(|s| s.parse().ok());
    match (first, arity) {
        ('t', Some(k)) if k >= 1 => {
            arity_check(k)?;
            let target = ops.last().expect("nonempty").index;
            if ops.last().expect("nonempty").negated {
                return Err(ParseCircuitError::new(lineno, "negated target"));
            }
            let controls: Vec<usize> = ops[..k - 1].iter().map(|o| o.index).collect();
            gates.push(Gate::mct(controls, target));
        }
        ('f', Some(2)) => {
            arity_check(2)?;
            gates.push(Gate::swap(ops[0].index, ops[1].index));
        }
        ('f', Some(k)) if k >= 3 => {
            arity_check(k)?;
            // Controlled SWAP of the last two operands; expand via the
            // standard CX / MCT / CX identity.
            let b = ops[k - 2].index;
            let c = ops[k - 1].index;
            let mut controls: Vec<usize> = ops[..k - 2].iter().map(|o| o.index).collect();
            gates.push(Gate::cx(c, b));
            controls.push(b);
            gates.push(Gate::mct(controls, c));
            gates.push(Gate::cx(c, b));
        }
        _ => {
            return Err(ParseCircuitError::new(
                lineno,
                format!("unknown gate `{mnemonic}`"),
            ))
        }
    }

    for &q in &negated {
        gates.push(Gate::x(q));
    }
    Ok(())
}

/// Renders a classical reversible circuit in `.real` format.
///
/// # Errors
///
/// Returns an error message if the circuit contains non-classical gates
/// (the `.real` format has no vocabulary for them).
pub fn to_real(circuit: &Circuit) -> Result<String, String> {
    let mut out = String::new();
    let names: Vec<String> = (0..circuit.n_qubits()).map(|i| format!("x{i}")).collect();
    let _ = writeln!(out, ".version 2.0");
    let _ = writeln!(out, ".numvars {}", circuit.n_qubits());
    let _ = writeln!(out, ".variables {}", names.join(" "));
    let _ = writeln!(out, ".begin");
    for g in circuit.gates() {
        match g {
            Gate::Single {
                op: qsyn_gate::SingleOp::X,
                qubit,
            } => {
                let _ = writeln!(out, "t1 {}", names[*qubit]);
            }
            Gate::Cx { control, target } => {
                let _ = writeln!(out, "t2 {} {}", names[*control], names[*target]);
            }
            Gate::Swap { a, b } => {
                let _ = writeln!(out, "f2 {} {}", names[*a], names[*b]);
            }
            Gate::Mct { controls, target } => {
                let ctl: Vec<&str> = controls.iter().map(|&c| names[c].as_str()).collect();
                let _ = writeln!(
                    out,
                    "t{} {} {}",
                    controls.len() + 1,
                    ctl.join(" "),
                    names[*target]
                );
            }
            other => return Err(format!("gate {other} not expressible in .real")),
        }
    }
    let _ = writeln!(out, ".end");
    Ok(out)
}

impl Circuit {
    /// Parses RevLib `.real` source; see [`parse_real`].
    ///
    /// # Errors
    ///
    /// See [`parse_real`].
    pub fn from_real(src: &str) -> Result<Circuit, ParseCircuitError> {
        parse_real(src)
    }

    /// Renders this circuit in `.real` format; see [`to_real`].
    ///
    /// # Errors
    ///
    /// See [`to_real`].
    pub fn to_real(&self) -> Result<String, String> {
        to_real(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_toffoli_cascade() {
        let src = "\
.version 2.0
.numvars 3
.variables a b c
.begin
t1 c
t2 a b
t3 a b c
.end
";
        let c = Circuit::from_real(src).unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gates()[0], Gate::x(2));
        assert_eq!(c.gates()[1], Gate::cx(0, 1));
        assert_eq!(c.gates()[2], Gate::toffoli(0, 1, 2));
    }

    #[test]
    fn default_variable_names() {
        let src = ".numvars 2\nt2 x0 x1\n";
        let c = Circuit::from_real(src).unwrap();
        assert_eq!(c.gates()[0], Gate::cx(0, 1));
    }

    #[test]
    fn negative_controls_expand_to_x_pairs() {
        let src = ".numvars 2\n.variables a b\nt2 -a b\n";
        let c = Circuit::from_real(src).unwrap();
        assert_eq!(
            c.gates(),
            &[Gate::x(0), Gate::cx(0, 1), Gate::x(0)],
            "negative control wraps in X"
        );
        // Semantics: X when a = 0.
        assert_eq!(c.permute_basis(0b00), 0b01);
        assert_eq!(c.permute_basis(0b10), 0b10);
    }

    #[test]
    fn fredkin_expansion_is_controlled_swap() {
        let src = ".numvars 3\n.variables a b c\nf3 a b c\n";
        let c = Circuit::from_real(src).unwrap();
        assert_eq!(c.len(), 3);
        // a = 1 swaps b and c; a = 0 leaves them.
        assert_eq!(c.permute_basis(0b110), 0b101);
        assert_eq!(c.permute_basis(0b101), 0b110);
        assert_eq!(c.permute_basis(0b010), 0b010);
        assert_eq!(c.permute_basis(0b111), 0b111);
    }

    #[test]
    fn swap_gate_f2() {
        let src = ".numvars 2\n.variables a b\nf2 a b\n";
        let c = Circuit::from_real(src).unwrap();
        assert_eq!(c.gates()[0], Gate::swap(0, 1));
    }

    #[test]
    fn wide_mct() {
        let src = ".numvars 5\n.variables a b c d e\nt5 a b c d e\n";
        let c = Circuit::from_real(src).unwrap();
        assert_eq!(c.gates()[0], Gate::mct(vec![0, 1, 2, 3], 4));
    }

    #[test]
    fn round_trip() {
        let src = ".numvars 4\n.variables a b c d\n.begin\nt1 a\nt2 a b\nt3 a b c\nt4 a b c d\nf2 a d\n.end\n";
        let c = Circuit::from_real(src).unwrap();
        let again = Circuit::from_real(&c.to_real().unwrap()).unwrap();
        assert_eq!(c.gates(), again.gates());
    }

    #[test]
    fn to_real_rejects_hadamard() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        assert!(c.to_real().is_err());
    }

    #[test]
    fn errors() {
        assert!(Circuit::from_real("t2 a b\n").is_err()); // gate before .numvars
        assert!(Circuit::from_real(".numvars 2\n.variables a b\nt2 a\n").is_err()); // arity
        assert!(Circuit::from_real(".numvars 2\n.variables a b\nq9 a b\n").is_err()); // unknown
        assert!(Circuit::from_real(".numvars 2\n.variables a b\nt2 a -b\n").is_err()); // neg target
        assert!(Circuit::from_real("").is_err()); // empty
    }
}
