//! The `.qc` circuit format used by the "Optimal single-target gates"
//! benchmark suite and related quantum circuit collections.
//!
//! Grammar subset:
//!
//! ```text
//! .v a b c        variable (line) declaration, in top-to-bottom order
//! .i a b          input lines (informational)
//! .o c            output lines (informational)
//! BEGIN
//! H a             one-qubit gates: X, Y, Z, H, S, S*, T, T*
//! tof a b         two operands: CNOT with control a, target b
//! tof a b c       three or more: (generalized) Toffoli, last operand target
//! cnot a b        alias for two-operand tof
//! swap a b        SWAP
//! END
//! ```

use crate::circuit::Circuit;
use crate::error::ParseCircuitError;
use qsyn_gate::{Gate, SingleOp};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses `.qc` source into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseCircuitError`] on unknown mnemonics, undeclared
/// variables, or missing `.v` declarations.
pub fn parse_qc(src: &str) -> Result<Circuit, ParseCircuitError> {
    let mut vars: HashMap<String, usize> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut gates: Vec<Gate> = Vec::new();
    let mut in_body = false;

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().expect("non-empty line");
        let rest: Vec<&str> = toks.collect();
        match head {
            ".v" => {
                for v in rest {
                    if vars.insert(v.to_string(), order.len()).is_some() {
                        return Err(ParseCircuitError::new(
                            lineno,
                            format!("duplicate variable `{v}`"),
                        ));
                    }
                    order.push(v.to_string());
                }
            }
            ".i" | ".o" | ".c" | ".ol" => {}
            "BEGIN" | "begin" => in_body = true,
            "END" | "end" => in_body = false,
            mnemonic => {
                if !in_body && !mnemonic.starts_with('.') {
                    // Tolerate files without BEGIN/END markers.
                }
                let args: Vec<usize> = rest
                    .iter()
                    .map(|v| {
                        vars.get(*v).copied().ok_or_else(|| {
                            ParseCircuitError::new(lineno, format!("unknown variable `{v}`"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                gates.push(qc_gate(mnemonic, args, lineno)?);
            }
        }
    }
    if order.is_empty() {
        return Err(ParseCircuitError::new(0, "missing .v declaration"));
    }
    Ok(Circuit::from_gates(order.len(), gates))
}

fn qc_gate(mnemonic: &str, args: Vec<usize>, lineno: usize) -> Result<Gate, ParseCircuitError> {
    let need = |n: usize| -> Result<(), ParseCircuitError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(ParseCircuitError::new(
                lineno,
                format!("`{mnemonic}` expects {n} operands, got {}", args.len()),
            ))
        }
    };
    // Multi-qubit gates act on distinct lines; `tof a a` or `swap b b` is a
    // malformed input and must surface as a parse error, not a panic.
    let distinct = |args: &[usize]| -> Result<(), ParseCircuitError> {
        for (i, a) in args.iter().enumerate() {
            if args[..i].contains(a) {
                return Err(ParseCircuitError::new(
                    lineno,
                    format!("`{mnemonic}` repeats an operand line"),
                ));
            }
        }
        Ok(())
    };
    let single = |op: SingleOp, args: &[usize]| -> Result<Gate, ParseCircuitError> {
        if args.len() != 1 {
            return Err(ParseCircuitError::new(
                lineno,
                format!("one-qubit gate expects 1 operand, got {}", args.len()),
            ));
        }
        Ok(Gate::single(op, args[0]))
    };
    match mnemonic {
        "X" | "x" | "NOT" | "not" => single(SingleOp::X, &args),
        "Y" | "y" => single(SingleOp::Y, &args),
        "Z" | "z" => single(SingleOp::Z, &args),
        "H" | "h" => single(SingleOp::H, &args),
        "S" | "s" | "P" => single(SingleOp::S, &args),
        "S*" | "s*" | "P*" => single(SingleOp::Sdg, &args),
        "T" | "t" => single(SingleOp::T, &args),
        "T*" | "t*" => single(SingleOp::Tdg, &args),
        "cnot" | "CNOT" => {
            need(2)?;
            distinct(&args)?;
            Ok(Gate::cx(args[0], args[1]))
        }
        "swap" | "SWAP" => {
            need(2)?;
            distinct(&args)?;
            Ok(Gate::swap(args[0], args[1]))
        }
        "cz" | "CZ" => {
            need(2)?;
            distinct(&args)?;
            Ok(Gate::cz(args[0], args[1]))
        }
        "tof" | "Tof" | "TOF" | "ccx" => match args.len() {
            0 => Err(ParseCircuitError::new(lineno, "`tof` needs operands")),
            1 => Ok(Gate::x(args[0])),
            _ => {
                distinct(&args)?;
                let target = *args.last().expect("nonempty");
                let controls = args[..args.len() - 1].to_vec();
                Ok(Gate::mct(controls, target))
            }
        },
        other => Err(ParseCircuitError::new(
            lineno,
            format!("unknown gate `{other}`"),
        )),
    }
}

/// Renders a circuit in `.qc` format, naming lines `q0, q1, ...`.
pub fn to_qc(circuit: &Circuit) -> String {
    let mut out = String::new();
    let names: Vec<String> = (0..circuit.n_qubits()).map(|i| format!("q{i}")).collect();
    let _ = writeln!(out, ".v {}", names.join(" "));
    let _ = writeln!(out, "BEGIN");
    for g in circuit.gates() {
        match g {
            Gate::Single { op, qubit } => {
                let name = match op {
                    SingleOp::X => "X",
                    SingleOp::Y => "Y",
                    SingleOp::Z => "Z",
                    SingleOp::H => "H",
                    SingleOp::S => "S",
                    SingleOp::Sdg => "S*",
                    SingleOp::T => "T",
                    SingleOp::Tdg => "T*",
                };
                let _ = writeln!(out, "{name} {}", names[*qubit]);
            }
            Gate::Cx { control, target } => {
                let _ = writeln!(out, "tof {} {}", names[*control], names[*target]);
            }
            Gate::Cz { control, target } => {
                let _ = writeln!(out, "cz {} {}", names[*control], names[*target]);
            }
            Gate::Swap { a, b } => {
                let _ = writeln!(out, "swap {} {}", names[*a], names[*b]);
            }
            Gate::Mct { controls, target } => {
                let ctl: Vec<&str> = controls.iter().map(|&c| names[c].as_str()).collect();
                let _ = writeln!(out, "tof {} {}", ctl.join(" "), names[*target]);
            }
        }
    }
    let _ = writeln!(out, "END");
    out
}

impl Circuit {
    /// Parses `.qc` source; see [`parse_qc`].
    ///
    /// # Errors
    ///
    /// See [`parse_qc`].
    pub fn from_qc(src: &str) -> Result<Circuit, ParseCircuitError> {
        parse_qc(src)
    }

    /// Renders this circuit in `.qc` format; see [`to_qc`].
    pub fn to_qc(&self) -> String {
        to_qc(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_target_gate_style_file() {
        let src = "\
.v a b c
.i a b
.o c
BEGIN
H c
T a
T* b
tof a b c
tof a c
X b
END
";
        let c = Circuit::from_qc(src).unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 6);
        assert_eq!(c.gates()[0], Gate::h(2));
        assert_eq!(c.gates()[3], Gate::toffoli(0, 1, 2));
        assert_eq!(c.gates()[4], Gate::cx(0, 2));
    }

    #[test]
    fn tof_arity_dispatch() {
        let src = ".v a b c d\nBEGIN\ntof a\ntof a b\ntof a b c\ntof a b c d\nEND\n";
        let c = Circuit::from_qc(src).unwrap();
        assert_eq!(c.gates()[0], Gate::x(0));
        assert_eq!(c.gates()[1], Gate::cx(0, 1));
        assert_eq!(c.gates()[2], Gate::toffoli(0, 1, 2));
        assert_eq!(c.gates()[3], Gate::mct(vec![0, 1, 2], 3));
    }

    #[test]
    fn round_trip() {
        let src = ".v a b c\nBEGIN\nH a\nS* b\ntof a b c\nswap a c\nEND\n";
        let c = Circuit::from_qc(src).unwrap();
        let again = Circuit::from_qc(&c.to_qc()).unwrap();
        assert_eq!(c.gates(), again.gates());
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "# header\n.v a b\n\nBEGIN\ntof a b # cnot\nEND\n";
        let c = Circuit::from_qc(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unknown_variable_is_error() {
        let src = ".v a\nBEGIN\nX z\nEND\n";
        let err = Circuit::from_qc(src).unwrap_err();
        assert!(err.to_string().contains("unknown variable"));
    }

    #[test]
    fn unknown_gate_is_error() {
        let src = ".v a\nBEGIN\nfrob a\nEND\n";
        assert!(Circuit::from_qc(src).is_err());
    }

    #[test]
    fn duplicate_variable_is_error() {
        let src = ".v a a\n";
        assert!(Circuit::from_qc(src).is_err());
    }

    #[test]
    fn missing_variables_is_error() {
        assert!(Circuit::from_qc("BEGIN\nEND\n").is_err());
    }
}
