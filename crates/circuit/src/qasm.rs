//! OpenQASM 2.0 emission and a parser for the subset the compiler produces
//! and consumes.
//!
//! The back-end's final output is QASM restricted to the IBM transmon
//! library; the parser additionally accepts the technology-independent
//! gates (`cz`, `swap`, `ccx`) so QASM can also serve as an input format.

use crate::circuit::Circuit;
use crate::error::ParseCircuitError;
use qsyn_gate::{Gate, SingleOp, SINGLE_OPS};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders a circuit as OpenQASM 2.0 source.
///
/// Technology-independent gates are emitted with their standard `qelib1`
/// names (`ccx`, `cz`, `swap`); generalized Toffoli gates with more than two
/// controls have no `qelib1` equivalent and are rejected.
///
/// # Errors
///
/// Returns an error message when the circuit contains a generalized Toffoli
/// with more than two controls (decompose it first).
pub fn to_qasm(circuit: &Circuit) -> Result<String, String> {
    let mut out = qasm_header(circuit.n_qubits(), circuit.name());
    for g in circuit.gates() {
        write_gate_qasm(&mut out, g)?;
    }
    Ok(out)
}

/// The OpenQASM 2.0 preamble for an `n_qubits`-wide register, without any
/// gate statements — the fixed-size prefix a streaming emitter writes once
/// before appending gates with [`write_gate_qasm`] window by window.
pub fn qasm_header(n_qubits: usize, name: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    if let Some(name) = name {
        let _ = writeln!(out, "// circuit: {name}");
    }
    let _ = writeln!(out, "qreg q[{n_qubits}];");
    let _ = writeln!(out, "creg c[{n_qubits}];");
    out
}

/// Appends one gate's QASM statement (with trailing newline) to `out`.
///
/// # Errors
///
/// Returns an error message when the gate is a generalized Toffoli with
/// more than two controls (no `qelib1` equivalent; decompose it first).
pub fn write_gate_qasm(out: &mut String, g: &Gate) -> Result<(), String> {
    match g {
        Gate::Single { op, qubit } => {
            let _ = writeln!(out, "{} q[{}];", op.qasm_name(), qubit);
        }
        Gate::Cx { control, target } => {
            let _ = writeln!(out, "cx q[{control}],q[{target}];");
        }
        Gate::Cz { control, target } => {
            let _ = writeln!(out, "cz q[{control}],q[{target}];");
        }
        Gate::Swap { a, b } => {
            let _ = writeln!(out, "swap q[{a}],q[{b}];");
        }
        Gate::Mct { controls, target } => {
            if controls.len() == 2 {
                let _ = writeln!(out, "ccx q[{}],q[{}],q[{}];", controls[0], controls[1], target);
            } else {
                return Err(format!(
                    "generalized Toffoli with {} controls has no QASM 2.0 name; decompose first",
                    controls.len()
                ));
            }
        }
    }
    Ok(())
}

/// Parses OpenQASM 2.0 source into a [`Circuit`].
///
/// Supported statements: `OPENQASM`, `include`, `qreg`, `creg` (ignored),
/// `barrier` (ignored), `measure` (ignored), `id` (ignored), the one-qubit
/// library gates, `cx`, `cz`, `swap`, and `ccx`. Multiple quantum registers
/// are concatenated in declaration order.
///
/// # Errors
///
/// Returns a [`ParseCircuitError`] on malformed syntax, unknown gates,
/// undeclared registers, or out-of-range indices.
pub fn parse_qasm(src: &str) -> Result<Circuit, ParseCircuitError> {
    let mut regs: HashMap<String, (usize, usize)> = HashMap::new(); // name -> (offset, size)
    let mut total = 0usize;
    let mut gates: Vec<Gate> = Vec::new();
    let mut name: Option<String> = None;

    for (lineno, raw_line) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw_line.find("//") {
            Some(pos) => {
                if name.is_none() {
                    if let Some(rest) = raw_line[pos + 2..].trim().strip_prefix("circuit:") {
                        name = Some(rest.trim().to_string());
                    }
                }
                &raw_line[..pos]
            }
            None => raw_line,
        };
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let (head, rest) = match stmt.find(|c: char| c.is_whitespace() || c == '(') {
                Some(pos) => (&stmt[..pos], stmt[pos..].trim()),
                None => (stmt, ""),
            };
            match head {
                "OPENQASM" | "include" | "creg" | "barrier" | "measure" | "id" | "reset" => {}
                "qreg" => {
                    let (rname, size) = parse_reg_decl(rest, lineno)?;
                    regs.insert(rname, (total, size));
                    total += size;
                }
                "u1" | "p" => {
                    // Parameterized phase gate: exact only for multiples of
                    // pi/4, which map onto the T/S/Z tower.
                    let (angle, operands) = split_params(rest, lineno)?;
                    let steps = parse_pi_quarter_steps(angle, lineno)?;
                    let args = parse_args(operands, &regs, lineno)?;
                    if args.len() != 1 {
                        return Err(ParseCircuitError::new(lineno, "u1 expects 1 operand"));
                    }
                    for op in SingleOp::from_phase_steps(steps) {
                        gates.push(Gate::single(op, args[0]));
                    }
                }
                gate => {
                    let args = parse_args(rest, &regs, lineno)?;
                    gates.push(gate_from_qasm(gate, &args, lineno)?);
                }
            }
        }
    }
    if total == 0 {
        return Err(ParseCircuitError::new(0, "no qreg declaration found"));
    }
    let mut c = Circuit::from_gates(total, gates);
    if let Some(n) = name {
        c.set_name(n);
    }
    Ok(c)
}

/// Splits `"(angle) q[0]"` into the angle text and the operand text.
fn split_params(rest: &str, lineno: usize) -> Result<(&str, &str), ParseCircuitError> {
    let inner = rest
        .strip_prefix('(')
        .ok_or_else(|| ParseCircuitError::new(lineno, "expected `(angle)`"))?;
    let close = inner
        .find(')')
        .ok_or_else(|| ParseCircuitError::new(lineno, "unterminated `(`"))?;
    Ok((inner[..close].trim(), inner[close + 1..].trim()))
}

/// Parses a symbolic angle that is an exact multiple of `pi/4`, returning
/// the step count modulo 8. Accepted forms: `0`, `pi`, `-pi/2`, `3*pi/4`,
/// `7pi/4`, with arbitrary spacing.
fn parse_pi_quarter_steps(angle: &str, lineno: usize) -> Result<u8, ParseCircuitError> {
    let bad = || {
        ParseCircuitError::new(
            lineno,
            format!("angle `{angle}` is not an exact multiple of pi/4 (only the T/S/Z tower is technology-exact)"),
        )
    };
    let text: String = angle.chars().filter(|c| !c.is_whitespace()).collect();
    if text == "0" {
        return Ok(0);
    }
    let (negative, text) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text.as_str()),
    };
    let pi_pos = text.find("pi").ok_or_else(bad)?;
    let coeff_text = text[..pi_pos].trim_end_matches('*');
    let coeff: i64 = if coeff_text.is_empty() {
        1
    } else {
        coeff_text.parse().map_err(|_| bad())?
    };
    let denom_text = &text[pi_pos + 2..];
    let denom: i64 = if denom_text.is_empty() {
        1
    } else {
        denom_text
            .strip_prefix('/')
            .and_then(|d| d.parse().ok())
            .ok_or_else(bad)?
    };
    // steps/4 per pi: angle = coeff*pi/denom = (coeff*4/denom) * pi/4.
    if denom == 0 || (coeff * 4) % denom != 0 {
        return Err(bad());
    }
    let mut steps = (coeff * 4 / denom) % 8;
    if negative {
        steps = -steps;
    }
    Ok(steps.rem_euclid(8) as u8)
}

fn parse_reg_decl(rest: &str, lineno: usize) -> Result<(String, usize), ParseCircuitError> {
    // Form: name[size]
    let open = rest
        .find('[')
        .ok_or_else(|| ParseCircuitError::new(lineno, "malformed register declaration"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| ParseCircuitError::new(lineno, "malformed register declaration"))?;
    let rname = rest[..open].trim().to_string();
    let size: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseCircuitError::new(lineno, "bad register size"))?;
    Ok((rname, size))
}

fn parse_args(
    rest: &str,
    regs: &HashMap<String, (usize, usize)>,
    lineno: usize,
) -> Result<Vec<usize>, ParseCircuitError> {
    let mut out = Vec::new();
    for piece in rest.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let open = piece
            .find('[')
            .ok_or_else(|| ParseCircuitError::new(lineno, format!("expected `reg[i]`, got `{piece}`")))?;
        let close = piece
            .find(']')
            .ok_or_else(|| ParseCircuitError::new(lineno, format!("expected `reg[i]`, got `{piece}`")))?;
        let rname = piece[..open].trim();
        let idx: usize = piece[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| ParseCircuitError::new(lineno, "bad qubit index"))?;
        let (offset, size) = regs
            .get(rname)
            .ok_or_else(|| ParseCircuitError::new(lineno, format!("unknown register `{rname}`")))?;
        if idx >= *size {
            return Err(ParseCircuitError::new(
                lineno,
                format!("index {idx} out of range for register `{rname}`"),
            ));
        }
        out.push(offset + idx);
    }
    Ok(out)
}

fn gate_from_qasm(mnemonic: &str, args: &[usize], lineno: usize) -> Result<Gate, ParseCircuitError> {
    let arity_err = |want: usize| {
        ParseCircuitError::new(
            lineno,
            format!("gate `{mnemonic}` expects {want} operands, got {}", args.len()),
        )
    };
    // Multi-qubit gates act on distinct lines; a repeated operand (e.g.
    // `cx q[0],q[0]`) is a malformed input, not a constructor panic.
    let distinct = || -> Result<(), ParseCircuitError> {
        for (i, a) in args.iter().enumerate() {
            if args[..i].contains(a) {
                return Err(ParseCircuitError::new(
                    lineno,
                    format!("gate `{mnemonic}` repeats operand q{a}"),
                ));
            }
        }
        Ok(())
    };
    for op in SINGLE_OPS {
        if op.qasm_name() == mnemonic {
            if args.len() != 1 {
                return Err(arity_err(1));
            }
            return Ok(Gate::single(op, args[0]));
        }
    }
    match mnemonic {
        "cx" | "CX" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            distinct()?;
            Ok(Gate::cx(args[0], args[1]))
        }
        "cz" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            distinct()?;
            Ok(Gate::cz(args[0], args[1]))
        }
        "swap" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            distinct()?;
            Ok(Gate::swap(args[0], args[1]))
        }
        "ccx" => {
            if args.len() != 3 {
                return Err(arity_err(3));
            }
            distinct()?;
            Ok(Gate::toffoli(args[0], args[1], args[2]))
        }
        other => Err(ParseCircuitError::new(
            lineno,
            format!("unknown gate `{other}`"),
        )),
    }
}

/// Convenience extension methods on [`Circuit`] for QASM I/O.
impl Circuit {
    /// Renders this circuit as OpenQASM 2.0; see [`to_qasm`].
    ///
    /// # Errors
    ///
    /// See [`to_qasm`].
    pub fn to_qasm(&self) -> Result<String, String> {
        to_qasm(self)
    }

    /// Parses OpenQASM 2.0 source; see [`parse_qasm`].
    ///
    /// # Errors
    ///
    /// See [`parse_qasm`].
    pub fn from_qasm(src: &str) -> Result<Circuit, ParseCircuitError> {
        parse_qasm(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3).with_name("sample");
        c.push(Gate::h(0));
        c.push(Gate::t(1));
        c.push(Gate::tdg(2));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cz(1, 2));
        c.push(Gate::swap(0, 2));
        c.push(Gate::toffoli(0, 1, 2));
        c
    }

    #[test]
    fn round_trip_preserves_gates_and_name() {
        let c = sample();
        let qasm = c.to_qasm().unwrap();
        let parsed = Circuit::from_qasm(&qasm).unwrap();
        assert_eq!(parsed.gates(), c.gates());
        assert_eq!(parsed.n_qubits(), 3);
        assert_eq!(parsed.name(), Some("sample"));
    }

    #[test]
    fn emits_standard_header() {
        let qasm = sample().to_qasm().unwrap();
        assert!(qasm.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
        assert!(qasm.contains("qreg q[3];"));
        assert!(qasm.contains("ccx q[0],q[1],q[2];"));
    }

    #[test]
    fn rejects_wide_mct() {
        let mut c = Circuit::new(4);
        c.push(Gate::mct(vec![0, 1, 2], 3));
        assert!(c.to_qasm().is_err());
    }

    #[test]
    fn parses_measure_and_barrier_as_noops() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
                   h q[0];\nbarrier q[0],q[1];\nmeasure q[0] -> c[0];\n";
        let c = Circuit::from_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0], Gate::h(0));
    }

    #[test]
    fn multiple_registers_concatenate() {
        let src = "qreg a[2];\nqreg b[2];\ncx a[1],b[0];\n";
        let c = Circuit::from_qasm(src).unwrap();
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.gates()[0], Gate::cx(1, 2));
    }

    #[test]
    fn error_on_unknown_gate() {
        let src = "qreg q[1];\nfrob q[0];\n";
        let err = Circuit::from_qasm(src).unwrap_err();
        assert!(err.to_string().contains("unknown gate"));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn error_on_out_of_range_index() {
        let src = "qreg q[2];\nx q[5];\n";
        let err = Circuit::from_qasm(src).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn error_on_missing_qreg() {
        let err = Circuit::from_qasm("x q[0];").unwrap_err();
        assert!(err.to_string().contains("unknown register"));
    }

    #[test]
    fn error_on_bad_arity() {
        let src = "qreg q[3];\ncx q[0];\n";
        let err = Circuit::from_qasm(src).unwrap_err();
        assert!(err.to_string().contains("expects 2 operands"));
    }

    #[test]
    fn comments_are_ignored() {
        let src = "qreg q[1]; // register\n// full line comment\nx q[0]; // flip\n";
        let c = Circuit::from_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn u1_multiples_of_quarter_pi() {
        let src = "qreg q[1];\nu1(pi/4) q[0];\nu1(pi/2) q[0];\nu1(pi) q[0];\n\
                   u1(-pi/4) q[0];\nu1(3*pi/4) q[0];\np(0) q[0];\nu1(2*pi) q[0];\n";
        let c = Circuit::from_qasm(src).unwrap();
        use qsyn_gate::SingleOp::*;
        assert_eq!(
            c.gates(),
            &[
                Gate::single(T, 0),
                Gate::single(S, 0),
                Gate::single(Z, 0),
                Gate::single(Tdg, 0),
                Gate::single(S, 0),
                Gate::single(T, 0), // 3*pi/4 = S then T
            ]
        );
    }

    #[test]
    fn u1_matches_phase_matrix() {
        let c = Circuit::from_qasm("qreg q[1];\nu1(3*pi/4) q[0];\n").unwrap();
        let m = c.to_matrix();
        let expect = qsyn_gate::C64::cis(3.0 * std::f64::consts::FRAC_PI_4);
        assert!(m[(1, 1)].approx_eq(expect));
        assert!(m[(0, 0)].is_one());
    }

    #[test]
    fn u1_rejects_non_exact_angles() {
        for bad in ["pi/3", "0.5", "pi/8", "2*pi/3", "theta"] {
            let src = format!("qreg q[1];\nu1({bad}) q[0];\n");
            let err = Circuit::from_qasm(&src).unwrap_err();
            assert!(err.to_string().contains("pi/4"), "{bad}: {err}");
        }
    }

    #[test]
    fn u1_spacing_variants() {
        let src = "qreg q[1];\nu1( 7 * pi / 4 ) q[0];\nu1(7pi/4) q[0];\n";
        let c = Circuit::from_qasm(src).unwrap();
        assert_eq!(c.gates(), &[Gate::tdg(0), Gate::tdg(0)]);
    }

    #[test]
    fn semantics_preserved_through_round_trip() {
        let c = sample();
        let parsed = Circuit::from_qasm(&c.to_qasm().unwrap()).unwrap();
        assert!(c.to_matrix().approx_eq(&parsed.to_matrix()));
    }
}
