//! ASAP layering and ASCII circuit rendering — the "composer view" side of
//! the design tool.
//!
//! [`layers`] groups gates into parallel moments (the scheduling view
//! behind the depth metrics); [`draw`] renders a circuit as fixed-width
//! ASCII art, one row per qubit line:
//!
//! ```text
//! q0: ─H───●───────●──
//!          │       │
//! q1: ─────⊕───●───●──
//!              │   │
//! q2: ─T───────⊕───⊕──
//! ```

use crate::circuit::Circuit;
use qsyn_gate::Gate;

/// Groups gate indices into ASAP (as-soon-as-possible) parallel layers:
/// each gate lands in the earliest layer after every earlier gate that
/// shares one of its lines.
pub fn layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut line_layer = vec![0usize; circuit.n_qubits()];
    let mut out: Vec<Vec<usize>> = Vec::new();
    for (i, g) in circuit.gates().iter().enumerate() {
        let qs = g.qubits();
        let layer = qs.iter().map(|&q| line_layer[q]).max().unwrap_or(0);
        if layer == out.len() {
            out.push(Vec::new());
        }
        out[layer].push(i);
        for q in qs {
            line_layer[q] = layer + 1;
        }
    }
    out
}

/// Renders the circuit as ASCII art. Intended for small-to-medium circuits
/// (the output width grows with the layer count).
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.n_qubits();
    let moments = layers(circuit);
    // Two text rows per qubit: the wire row and a connector row below it.
    let mut wire: Vec<String> = (0..n).map(|q| format!("q{q}: ")).collect();
    let label_width = wire.iter().map(String::len).max().unwrap_or(0);
    for w in &mut wire {
        while w.len() < label_width {
            w.push(' ');
        }
    }
    let mut link: Vec<String> = vec![" ".repeat(label_width); n];

    for moment in &moments {
        // Symbols for this column, one per line.
        let mut cell: Vec<Option<String>> = vec![None; n];
        let mut vertical = vec![false; n]; // connector below this line
        for &gi in moment {
            match &circuit.gates()[gi] {
                Gate::Single { op, qubit } => {
                    cell[*qubit] = Some(op.to_string());
                }
                Gate::Cx { control, target } => {
                    cell[*control] = Some("●".into());
                    cell[*target] = Some("⊕".into());
                    span(&mut vertical, *control, *target);
                }
                Gate::Cz { control, target } => {
                    cell[*control] = Some("●".into());
                    cell[*target] = Some("○".into());
                    span(&mut vertical, *control, *target);
                }
                Gate::Swap { a, b } => {
                    cell[*a] = Some("╳".into());
                    cell[*b] = Some("╳".into());
                    span(&mut vertical, *a, *b);
                }
                Gate::Mct { controls, target } => {
                    for c in controls {
                        cell[*c] = Some("●".into());
                    }
                    cell[*target] = Some("⊕".into());
                    let lo = *controls.iter().min().expect("controls").min(target);
                    let hi = *controls.iter().max().expect("controls").max(target);
                    span(&mut vertical, lo, hi);
                }
            }
        }
        let width = cell
            .iter()
            .map(|c| c.as_ref().map_or(0, |s| s.chars().count()))
            .max()
            .unwrap_or(1)
            .max(1);
        for q in 0..n {
            let body = match &cell[q] {
                Some(s) => {
                    let pad = width - s.chars().count();
                    format!("─{}{s}{}─", "─".repeat(pad / 2), "─".repeat(pad - pad / 2))
                }
                None if column_crosses(&vertical, q) => {
                    // A vertical connector passes through this line.
                    let left = (width - 1) / 2;
                    format!(
                        "─{}┼{}─",
                        "─".repeat(left),
                        "─".repeat(width - 1 - left)
                    )
                }
                None => "─".repeat(width + 2),
            };
            wire[q].push_str(&body);
            let below = if vertical[q] {
                format!(" {} ", center_char('│', width))
            } else {
                " ".repeat(width + 2)
            };
            link[q].push_str(&below);
        }
    }

    let mut out = String::new();
    for q in 0..n {
        out.push_str(wire[q].trim_end());
        out.push('\n');
        if q + 1 < n && !link[q].trim().is_empty() {
            out.push_str(link[q].trim_end());
            out.push('\n');
        }
    }
    out
}

/// Marks the connector rows strictly between two lines (exclusive of the
/// bottom line, since connectors render *below* each line).
fn span(vertical: &mut [bool], a: usize, b: usize) {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    vertical[lo..hi].fill(true);
}

/// Whether a vertical connector crosses line `q` (i.e. the connector below
/// some line above continues past `q`).
fn column_crosses(vertical: &[bool], q: usize) -> bool {
    q > 0 && vertical[q - 1] && vertical[q]
}

fn center_char(c: char, width: usize) -> String {
    let mut s = " ".repeat(width.saturating_sub(1) / 2);
    s.push(c);
    while s.chars().count() < width {
        s.push(' ');
    }
    s
}

impl Circuit {
    /// ASCII rendering of this circuit; see [`draw`].
    pub fn draw(&self) -> String {
        draw(self)
    }

    /// ASAP parallel layers of this circuit; see [`layers`].
    pub fn layers(&self) -> Vec<Vec<usize>> {
        layers(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c
    }

    #[test]
    fn layers_respect_dependencies() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0)); // layer 0
        c.push(Gate::h(1)); // layer 0
        c.push(Gate::cx(0, 1)); // layer 1
        c.push(Gate::t(2)); // layer 0
        c.push(Gate::cx(1, 2)); // layer 2
        let l = layers(&c);
        assert_eq!(l, vec![vec![0, 1, 3], vec![2], vec![4]]);
        assert_eq!(l.len(), crate::stats::depth(&c));
    }

    #[test]
    fn layers_of_empty_circuit() {
        assert!(layers(&Circuit::new(3)).is_empty());
    }

    #[test]
    fn draw_bell_pair() {
        let art = bell().draw();
        assert!(art.contains("q0:"));
        assert!(art.contains("q1:"));
        assert!(art.contains('H'));
        assert!(art.contains('●'));
        assert!(art.contains('⊕'));
        assert!(art.contains('│'), "vertical connector present:\n{art}");
    }

    #[test]
    fn draw_skips_crossed_lines_correctly() {
        // CNOT from q0 to q2 passes through q1 with a cross mark.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 2));
        let art = c.draw();
        assert!(art.contains('┼'), "{art}");
    }

    #[test]
    fn draw_every_gate_kind() {
        let mut c = Circuit::new(4);
        c.push(Gate::tdg(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cz(1, 2));
        c.push(Gate::swap(2, 3));
        c.push(Gate::mct(vec![0, 1, 2], 3));
        let art = c.draw();
        for sym in ["T†", "●", "⊕", "○", "╳"] {
            assert!(art.contains(sym), "missing {sym} in\n{art}");
        }
        // Four wire rows.
        assert_eq!(art.lines().filter(|l| l.starts_with('q')).count(), 4);
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        let art = c.draw();
        let col0 = art.lines().next().unwrap().find('H');
        let col1 = art.lines().nth(1).unwrap().find('H');
        assert_eq!(col0, col1, "same moment, same column:\n{art}");
    }
}
