//! Quantum circuit intermediate representation and text-format front-ends.
//!
//! The [`Circuit`] type is the IR every stage of the `qsyn` compiler operates
//! on: the ESOP front-end emits it, the technology-mapping back-end rewrites
//! it, and the QMDD verifier consumes it. Three text formats are supported,
//! mirroring the input formats of the paper (Section 4):
//!
//! * OpenQASM 2.0 (`.qasm`) — [`Circuit::from_qasm`] / [`Circuit::to_qasm`];
//! * `.qc` — [`Circuit::from_qc`] / [`Circuit::to_qc`];
//! * RevLib `.real` — [`Circuit::from_real`] / [`Circuit::to_real`].
//!
//! # Examples
//!
//! ```
//! use qsyn_circuit::Circuit;
//!
//! let c = Circuit::from_real(".numvars 3\n.variables a b c\nt3 a b c\n")?;
//! assert_eq!(c.stats().unmapped_multi_count, 1);
//! # Ok::<(), qsyn_circuit::ParseCircuitError>(())
//! ```

#![warn(missing_docs)]

mod circuit;
mod draw;
mod error;
mod hash;
mod qasm;
mod qc;
mod real;
mod stats;

pub use circuit::Circuit;
pub use hash::{structural_hash, Fnv128};
pub use draw::{draw, layers};
pub use error::ParseCircuitError;
pub use qasm::{parse_qasm, qasm_header, to_qasm, write_gate_qasm};
pub use qc::{parse_qc, to_qc};
pub use real::{parse_real, to_real};
pub use stats::{depth, gate_histogram, t_depth, CircuitStats};
