//! Parse errors for the circuit front-ends.

use std::error::Error;
use std::fmt;

/// Error produced when parsing a circuit source file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCircuitError {
    line: usize,
    message: String,
}

impl ParseCircuitError {
    /// Creates an error at a 1-based source line.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseCircuitError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line the error was detected on (0 when unknown).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl Error for ParseCircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseCircuitError::new(7, "unknown gate `frob`");
        assert_eq!(e.to_string(), "line 7: unknown gate `frob`");
        assert_eq!(e.line(), 7);
        assert_eq!(e.message(), "unknown gate `frob`");
    }

    #[test]
    fn display_without_line() {
        let e = ParseCircuitError::new(0, "empty input");
        assert_eq!(e.to_string(), "empty input");
    }
}
