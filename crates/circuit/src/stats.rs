//! Gate statistics consumed by quantum cost models (paper Eqn. 2).

use crate::circuit::Circuit;
use qsyn_gate::Gate;
use std::fmt;

/// Aggregate gate counts of a circuit.
///
/// The paper's quantum cost function (Eqn. 2) is
/// `q_cost = 0.5 * t + 0.25 * c + a`, where `t` is [`t_count`],
/// `c` is [`cnot_count`] and `a` is [`volume`].
///
/// [`t_count`]: CircuitStats::t_count
/// [`cnot_count`]: CircuitStats::cnot_count
/// [`volume`]: CircuitStats::volume
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Count of T and T† gates.
    pub t_count: usize,
    /// Count of CNOT gates.
    pub cnot_count: usize,
    /// Total gate count ("gate volume").
    pub volume: usize,
    /// Count of one-qubit gates other than T/T†.
    pub other_single_count: usize,
    /// Count of technology-independent multi-qubit gates still present
    /// (CZ, SWAP, Toffoli, generalized Toffoli).
    pub unmapped_multi_count: usize,
    /// Largest control count among MCT gates (0 when none).
    pub max_mct_controls: usize,
}

impl CircuitStats {
    /// Computes statistics for a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut s = CircuitStats::default();
        for g in circuit.gates() {
            s.volume += 1;
            match g {
                Gate::Single { .. } if g.is_t_like() => s.t_count += 1,
                Gate::Single { .. } => s.other_single_count += 1,
                Gate::Cx { .. } => s.cnot_count += 1,
                Gate::Mct { controls, .. } => {
                    s.unmapped_multi_count += 1;
                    s.max_mct_controls = s.max_mct_controls.max(controls.len());
                }
                _ => s.unmapped_multi_count += 1,
            }
        }
        s
    }
}

/// A histogram of gate kinds by display mnemonic (`"H"`, `"CNOT"`,
/// `"T3"`, ...), for reporting tools.
pub fn gate_histogram(circuit: &Circuit) -> std::collections::BTreeMap<String, usize> {
    let mut hist = std::collections::BTreeMap::new();
    for g in circuit.gates() {
        let key = match g {
            Gate::Single { op, .. } => op.to_string(),
            Gate::Cx { .. } => "CNOT".to_string(),
            Gate::Cz { .. } => "CZ".to_string(),
            Gate::Swap { .. } => "SWAP".to_string(),
            Gate::Mct { controls, .. } => format!("T{}", controls.len() + 1),
        };
        *hist.entry(key).or_insert(0) += 1;
    }
    hist
}

/// Circuit depth: the length of the critical path when gates on disjoint
/// lines execute in parallel.
pub fn depth(circuit: &Circuit) -> usize {
    depth_by(circuit, |_| true)
}

/// T-depth: the number of parallel layers containing at least one T or T†
/// gate on the critical path — the fault-tolerance latency metric the
/// paper's reference \[10\] (Amy et al.) optimizes.
pub fn t_depth(circuit: &Circuit) -> usize {
    depth_by(circuit, Gate::is_t_like)
}

/// Generic layered depth: each gate lands on layer
/// `1 + max(layer of its lines)` and `counts` decides whether a layer
/// transition is charged for that gate.
fn depth_by(circuit: &Circuit, counts: impl Fn(&Gate) -> bool) -> usize {
    let mut line_layer = vec![0usize; circuit.n_qubits()];
    let mut max_layer = 0usize;
    for g in circuit.gates() {
        let qs = g.qubits();
        let base = qs.iter().map(|&q| line_layer[q]).max().unwrap_or(0);
        let layer = if counts(g) { base + 1 } else { base };
        for q in qs {
            line_layer[q] = layer;
        }
        max_layer = max_layer.max(layer);
    }
    max_layer
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T={} CNOT={} volume={}",
            self.t_count, self.cnot_count, self.volume
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::SingleOp;

    #[test]
    fn counts_each_category() {
        let mut c = Circuit::new(4);
        c.push(Gate::t(0));
        c.push(Gate::tdg(1));
        c.push(Gate::h(0));
        c.push(Gate::single(SingleOp::Sdg, 2));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(2, 3));
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::mct(vec![0, 1, 2], 3));
        let s = c.stats();
        assert_eq!(s.t_count, 2);
        assert_eq!(s.cnot_count, 3);
        assert_eq!(s.other_single_count, 2);
        assert_eq!(s.unmapped_multi_count, 2);
        assert_eq!(s.max_mct_controls, 3);
        assert_eq!(s.volume, 9);
    }

    #[test]
    fn empty_circuit_is_all_zero() {
        let s = Circuit::new(3).stats();
        assert_eq!(s, CircuitStats::default());
    }

    #[test]
    fn display_mentions_t_and_cnot() {
        let mut c = Circuit::new(2);
        c.push(Gate::t(0));
        c.push(Gate::cx(0, 1));
        let text = c.stats().to_string();
        assert!(text.contains("T=1"));
        assert!(text.contains("CNOT=1"));
        assert!(text.contains("volume=2"));
    }

    #[test]
    fn histogram_counts_by_mnemonic() {
        let mut c = Circuit::new(4);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        c.push(Gate::t(2));
        c.push(Gate::cx(0, 1));
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::mct(vec![0, 1, 2], 3));
        let h = gate_histogram(&c);
        assert_eq!(h["H"], 2);
        assert_eq!(h["T"], 1);
        assert_eq!(h["CNOT"], 1);
        assert_eq!(h["T3"], 1);
        assert_eq!(h["T4"], 1);
        assert_eq!(h.values().sum::<usize>(), c.len());
    }

    #[test]
    fn depth_of_serial_and_parallel_gates() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::h(1)); // parallel with the first
        c.push(Gate::cx(0, 1)); // depends on both
        c.push(Gate::h(2)); // parallel with everything
        assert_eq!(depth(&c), 2);
        assert_eq!(depth(&Circuit::new(3)), 0);
    }

    #[test]
    fn t_depth_counts_only_t_layers() {
        let mut c = Circuit::new(2);
        c.push(Gate::t(0));
        c.push(Gate::t(1)); // same T layer
        c.push(Gate::cx(0, 1));
        c.push(Gate::t(1)); // second T layer, behind the CNOT
        assert_eq!(t_depth(&c), 2);
        assert_eq!(depth(&c), 3);
    }

    #[test]
    fn t_depth_sees_dependencies_through_clifford_gates() {
        let mut c = Circuit::new(1);
        c.push(Gate::t(0));
        c.push(Gate::h(0));
        c.push(Gate::t(0));
        assert_eq!(t_depth(&c), 2);
        let mut parallel = Circuit::new(2);
        parallel.push(Gate::t(0));
        parallel.push(Gate::h(1));
        parallel.push(Gate::t(1));
        assert_eq!(t_depth(&parallel), 1);
    }

    #[test]
    fn depth_of_toffoli_network() {
        // The 15-gate Clifford+T Toffoli has known T-depth <= 6 in this
        // (unoptimized-scheduling) layering and full depth <= 13.
        let mut c = Circuit::new(3);
        c.push(Gate::toffoli(0, 1, 2));
        assert_eq!(depth(&c), 1);
        assert_eq!(t_depth(&c), 0);
    }

    #[test]
    fn swap_and_cz_count_as_unmapped() {
        let mut c = Circuit::new(2);
        c.push(Gate::swap(0, 1));
        c.push(Gate::cz(0, 1));
        let s = c.stats();
        assert_eq!(s.unmapped_multi_count, 2);
        assert_eq!(s.cnot_count, 0);
    }
}
