//! The circuit intermediate representation shared by the front-end,
//! back-end, and verifier.

use crate::stats::CircuitStats;
use qsyn_gate::{C64, Gate, Matrix};
use std::fmt;

/// A quantum circuit: an ordered list of [`Gate`]s over `n` qubit lines.
///
/// Gates are stored in execution order (index 0 runs first). The circuit's
/// unitary is therefore `G_{k-1} * ... * G_1 * G_0` as a matrix product.
///
/// # Examples
///
/// ```
/// use qsyn_circuit::Circuit;
/// use qsyn_gate::Gate;
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::h(0));
/// bell.push(Gate::cx(0, 1));
/// assert_eq!(bell.len(), 2);
/// assert_eq!(bell.stats().cnot_count, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
    name: Option<String>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` lines.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
            name: None,
        }
    }

    /// Creates a circuit from a gate list.
    ///
    /// # Panics
    ///
    /// Panics if any gate references a line `>= n_qubits`.
    pub fn from_gates(n_qubits: usize, gates: Vec<Gate>) -> Self {
        for g in &gates {
            assert!(
                g.max_qubit() < n_qubits,
                "gate {g} exceeds register of {n_qubits} qubits"
            );
        }
        Circuit {
            n_qubits,
            gates,
            name: None,
        }
    }

    /// Builder-style name annotation.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Circuit name, if one was set.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Sets the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// Number of qubit lines.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates (the paper's "gate volume").
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Mutable access to the gate list (used by the optimizer).
    pub fn gates_mut(&mut self) -> &mut Vec<Gate> {
        &mut self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a line `>= n_qubits`.
    pub fn push(&mut self, gate: Gate) {
        assert!(
            gate.max_qubit() < self.n_qubits,
            "gate {gate} exceeds register of {} qubits",
            self.n_qubits
        );
        self.gates.push(gate);
    }

    /// Appends every gate of `other` (which must fit in this register).
    pub fn append(&mut self, other: &Circuit) {
        for g in other.gates() {
            self.push(g.clone());
        }
    }

    /// Grows the register to `n_qubits` lines (no-op if already larger).
    pub fn widen(&mut self, n_qubits: usize) {
        if n_qubits > self.n_qubits {
            self.n_qubits = n_qubits;
        }
    }

    /// Iterates over gates in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// The circuit repeated `times` in sequence (e.g. iterated Grover
    /// rounds or powered permutations).
    pub fn repeated(&self, times: usize) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        if let Some(name) = self.name() {
            out.set_name(format!("{name}^{times}"));
        }
        for _ in 0..times {
            out.append(self);
        }
        out
    }

    /// The exact inverse circuit (gates reversed and individually inverted).
    pub fn inverse(&self) -> Circuit {
        let gates = self.gates.iter().rev().map(Gate::inverse).collect();
        Circuit {
            n_qubits: self.n_qubits,
            gates,
            name: self.name.as_ref().map(|n| format!("{n}_inv")),
        }
    }

    /// Returns a copy with every qubit index `q` replaced by `map(q)`.
    ///
    /// Used to place logical circuits onto physical device lines.
    ///
    /// # Panics
    ///
    /// Panics if the mapping sends two lines of one gate to the same index
    /// or produces an index `>= n_qubits`.
    pub fn relabeled(&self, n_qubits: usize, map: impl Fn(usize) -> usize) -> Circuit {
        let gates: Vec<Gate> = self
            .gates
            .iter()
            .map(|g| relabel_gate(g, &map))
            .collect();
        Circuit::from_gates(n_qubits, gates).with_name(
            self.name.clone().unwrap_or_else(|| "circuit".into()),
        )
    }

    /// Gate, T, and CNOT statistics used by cost models.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::of(self)
    }

    /// Whether every gate is natively executable on transmon hardware
    /// (one-qubit library gates and CNOT only).
    pub fn is_technology_ready(&self) -> bool {
        self.gates.iter().all(Gate::is_technology_ready)
    }

    /// Applies the circuit to a state vector in place.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != 2^n_qubits`.
    pub fn apply_to_state(&self, state: &mut [C64]) {
        for g in &self.gates {
            g.apply_to_state(state, self.n_qubits);
        }
    }

    /// Dense unitary of the whole circuit. Reference semantics for tests;
    /// practical only for small registers (about 10 qubits or fewer).
    pub fn to_matrix(&self) -> Matrix {
        let dim = 1usize << self.n_qubits;
        let mut out = Matrix::zeros(dim);
        for col in 0..dim {
            let mut state = vec![C64::ZERO; dim];
            state[col] = C64::ONE;
            self.apply_to_state(&mut state);
            for (row, v) in state.iter().enumerate() {
                out[(row, col)] = *v;
            }
        }
        out
    }

    /// For purely classical (permutation) circuits: the output basis state
    /// for a given input basis state, computed without amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a non-permutation gate (H, S, T, ...).
    pub fn permute_basis(&self, input: u64) -> u64 {
        let mut b = input;
        let n = self.n_qubits;
        let bit = |q: usize| 1u64 << (n - 1 - q);
        for g in &self.gates {
            match g {
                Gate::Single {
                    op: qsyn_gate::SingleOp::X,
                    qubit,
                } => b ^= bit(*qubit),
                Gate::Cx { control, target } => {
                    if b & bit(*control) != 0 {
                        b ^= bit(*target);
                    }
                }
                Gate::Swap { a, b: q } => {
                    let (ba, bb) = (bit(*a), bit(*q));
                    let va = b & ba != 0;
                    let vb = b & bb != 0;
                    if va != vb {
                        b ^= ba | bb;
                    }
                }
                Gate::Mct { controls, target } => {
                    if controls.iter().all(|c| b & bit(*c) != 0) {
                        b ^= bit(*target);
                    }
                }
                other => panic!("permute_basis on non-classical gate {other}"),
            }
        }
        b
    }

    /// Whether the circuit consists solely of classical reversible gates
    /// (NOT / CNOT / SWAP / Toffoli / MCT).
    pub fn is_classical(&self) -> bool {
        self.gates.iter().all(|g| {
            matches!(
                g,
                Gate::Single {
                    op: qsyn_gate::SingleOp::X,
                    ..
                } | Gate::Cx { .. }
                    | Gate::Swap { .. }
                    | Gate::Mct { .. }
            )
        })
    }
}

fn relabel_gate(g: &Gate, map: &impl Fn(usize) -> usize) -> Gate {
    match g {
        Gate::Single { op, qubit } => Gate::single(*op, map(*qubit)),
        Gate::Cx { control, target } => Gate::cx(map(*control), map(*target)),
        Gate::Cz { control, target } => Gate::cz(map(*control), map(*target)),
        Gate::Swap { a, b } => Gate::swap(map(*a), map(*b)),
        Gate::Mct { controls, target } => {
            Gate::mct(controls.iter().map(|&c| map(c)).collect(), map(*target))
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit {} ({} qubits, {} gates):",
            self.name.as_deref().unwrap_or("<anonymous>"),
            self.n_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl IntoIterator for Circuit {
    type Item = Gate;
    type IntoIter = std::vec::IntoIter<Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.into_iter()
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::{Matrix, SingleOp};

    fn ghz3() -> Circuit {
        let mut c = Circuit::new(3).with_name("ghz3");
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c
    }

    #[test]
    fn push_and_len() {
        let c = ghz3();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.name(), Some("ghz3"));
    }

    #[test]
    #[should_panic(expected = "exceeds register")]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.push(Gate::x(2));
    }

    #[test]
    fn inverse_composes_to_identity() {
        let c = ghz3();
        let mut both = c.clone();
        both.append(&c.inverse());
        assert!(both.to_matrix().approx_eq(&Matrix::identity(8)));
    }

    #[test]
    fn to_matrix_of_bell_pair() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let m = c.to_matrix();
        // Column 0 is (|00> + |11>)/sqrt(2).
        assert!((m[(0, 0)].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((m[(3, 0)].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!(m[(1, 0)].is_zero() && m[(2, 0)].is_zero());
    }

    #[test]
    fn relabeled_preserves_semantics_under_permutation() {
        let c = ghz3();
        let perm = [2usize, 0, 1];
        let r = c.relabeled(3, |q| perm[q]);
        // Relabeled circuit equals conjugation by the permutation.
        let m = c.to_matrix();
        let rm = r.to_matrix();
        // Check a couple of amplitudes directly: H on line 2 now.
        assert_eq!(r.gates()[0], Gate::h(2));
        assert!(!m.approx_eq(&rm));
    }

    #[test]
    fn permute_basis_matches_matrix_for_classical() {
        let mut c = Circuit::new(3);
        c.push(Gate::x(0));
        c.push(Gate::cx(0, 2));
        c.push(Gate::toffoli(0, 2, 1));
        c.push(Gate::swap(1, 2));
        assert!(c.is_classical());
        let m = c.to_matrix();
        for input in 0..8u64 {
            let out = c.permute_basis(input);
            assert!(m[(out as usize, input as usize)].is_one());
        }
    }

    #[test]
    #[should_panic(expected = "non-classical")]
    fn permute_basis_rejects_hadamard() {
        let c = ghz3();
        let _ = c.permute_basis(0);
    }

    #[test]
    fn is_classical_flags() {
        assert!(!ghz3().is_classical());
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        assert!(c.is_classical());
        c.push(Gate::single(SingleOp::T, 0));
        assert!(!c.is_classical());
    }

    #[test]
    fn technology_ready_detection() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        assert!(c.is_technology_ready());
        c.push(Gate::toffoli(0, 1, 2));
        assert!(!c.is_technology_ready());
    }

    #[test]
    fn repeated_composes_permutations() {
        // The 3-line increment repeated 8 times is the identity.
        let mut inc = Circuit::new(3).with_name("inc");
        inc.push(Gate::x(2));
        inc.push(Gate::cx(2, 1));
        inc.push(Gate::toffoli(1, 2, 0));
        // (not literally an increment, but a permutation with some order)
        let p1 = inc.permute_basis(0b011);
        let twice = inc.repeated(2);
        assert_eq!(twice.len(), 2 * inc.len());
        assert_eq!(twice.permute_basis(0b011), inc.permute_basis(p1));
        assert_eq!(twice.name(), Some("inc^2"));
        assert!(inc.repeated(0).is_empty());
    }

    #[test]
    fn widen_only_grows() {
        let mut c = Circuit::new(2);
        c.widen(5);
        assert_eq!(c.n_qubits(), 5);
        c.widen(3);
        assert_eq!(c.n_qubits(), 5);
    }

    #[test]
    fn extend_and_iterators() {
        let mut c = Circuit::new(2);
        c.extend([Gate::h(0), Gate::cx(0, 1)]);
        assert_eq!(c.iter().count(), 2);
        assert_eq!((&c).into_iter().count(), 2);
        assert_eq!(c.into_iter().count(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let text = ghz3().to_string();
        assert!(text.contains("ghz3"));
        assert!(text.contains("H q0"));
        assert!(text.contains("CNOT q1 -> q2"));
    }
}
