//! Property tests for the generated device families (`lnn`, calibrated
//! grid, heavy-hex): connectivity, degree bounds, edge symmetry,
//! calibration coverage, and fingerprint stability under construction
//! order — the invariants the sparse routing oracle and the compile
//! cache key rely on.

use proptest::prelude::*;
use qsyn_arch::{devices, Device};

/// The structural invariants every generated family must satisfy: the
/// coupling graph is connected, every edge exists in both orientations
/// (no Fig. 6 reversal on generated devices), no vertex exceeds the
/// family's degree bound, and every directed coupling carries a synthetic
/// error annotation in (0, 1).
fn assert_family_invariants(d: &Device, max_degree: usize) {
    assert!(d.is_connected(), "{} disconnected", d.name());
    assert!(d.has_error_data(), "{} has no calibration", d.name());
    for (c, t) in d.couplings() {
        assert!(
            d.has_coupling(t, c),
            "{}: coupling {c}->{t} has no reverse orientation",
            d.name()
        );
        let e = d
            .cnot_error(c, t)
            .unwrap_or_else(|| panic!("{}: {c}->{t} uncalibrated", d.name()));
        assert!(
            e > 0.0 && e < 1.0,
            "{}: {c}->{t} error {e} outside (0, 1)",
            d.name()
        );
    }
    for q in 0..d.n_qubits() {
        assert!(
            d.neighbors(q).len() <= max_degree,
            "{}: qubit {q} has degree {} > {max_degree}",
            d.name(),
            d.neighbors(q).len()
        );
    }
}

/// Rebuilds `d` from a permuted coupling list (calibration copied edge by
/// edge) and checks the fingerprint is unchanged: the digest must depend
/// on the device, never on the order its edges were declared in.
fn assert_fingerprint_order_independent(d: &Device, perm: &[usize]) {
    let couplings: Vec<(usize, usize)> = d.couplings().collect();
    let shuffled = perm.iter().map(|&i| couplings[i % couplings.len()]);
    // `perm` may repeat indices after the modulo; de-duplicate while
    // keeping its order so the rebuilt device has the same edge set.
    let mut seen = std::collections::HashSet::new();
    let reordered: Vec<(usize, usize)> = shuffled
        .chain(couplings.iter().copied())
        .filter(|p| seen.insert(*p))
        .collect();
    assert_eq!(reordered.len(), couplings.len());
    let mut rebuilt = Device::from_pairs(d.name().to_string(), d.n_qubits(), reordered);
    for (c, t) in couplings {
        rebuilt.set_cnot_error(c, t, d.cnot_error(c, t).expect("calibrated"));
    }
    assert_eq!(
        rebuilt.fingerprint(),
        d.fingerprint(),
        "{}: fingerprint depends on construction order",
        d.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lnn_family_invariants(n in 2usize..300) {
        let d = devices::lnn(n);
        prop_assert_eq!(d.n_qubits(), n);
        // A chain has exactly n-1 undirected edges, two orientations each.
        prop_assert_eq!(d.coupling_count(), 2 * (n - 1));
        assert_family_invariants(&d, 2);
    }

    #[test]
    fn grid_family_invariants(w in 1usize..24, h in 1usize..24) {
        prop_assume!(w * h >= 2);
        let d = devices::grid_calibrated(w, h);
        prop_assert_eq!(d.n_qubits(), w * h);
        // (w-1)h horizontal + w(h-1) vertical undirected edges.
        prop_assert_eq!(d.coupling_count(), 2 * ((w - 1) * h + w * (h - 1)));
        assert_family_invariants(&d, 4);
    }

    #[test]
    fn heavy_hex_family_invariants(dist in 1usize..7) {
        let d = devices::heavy_hex(dist);
        prop_assert_eq!(d.n_qubits(), (dist + 1) * (5 * dist + 3));
        // Heavy decoration: vertices degree <= 3, edge qubits exactly 2.
        assert_family_invariants(&d, 3);
    }

    #[test]
    fn fingerprints_are_construction_order_independent(
        n in 2usize..64,
        perm in proptest::collection::vec(0usize..4096, 1..256),
    ) {
        assert_fingerprint_order_independent(&devices::lnn(n), &perm);
        assert_fingerprint_order_independent(&devices::grid_calibrated(n, 3), &perm);
        assert_fingerprint_order_independent(&devices::heavy_hex(1 + n % 4), &perm);
    }

    #[test]
    fn fingerprints_are_distinct_across_sizes(a in 2usize..200, b in 2usize..200) {
        prop_assume!(a != b);
        prop_assert_ne!(devices::lnn(a).fingerprint(), devices::lnn(b).fingerprint());
    }

    #[test]
    fn device_by_name_round_trips_generated_families(
        n in 2usize..200, w in 1usize..24, h in 1usize..24, dist in 1usize..7,
    ) {
        prop_assume!(w * h >= 2);
        let lnn = devices::device_by_name(&format!("lnn:{n}")).unwrap();
        prop_assert_eq!(lnn.fingerprint(), devices::lnn(n).fingerprint());
        let grid = devices::device_by_name(&format!("grid:{w}x{h}")).unwrap();
        prop_assert_eq!(grid.fingerprint(), devices::grid_calibrated(w, h).fingerprint());
        let hex = devices::device_by_name(&format!("heavy-hex:{dist}")).unwrap();
        prop_assert_eq!(hex.fingerprint(), devices::heavy_hex(dist).fingerprint());
    }
}
