//! Quantum cost models (paper Section 2.2, Eqn. 2).
//!
//! The compiler minimizes an arbitrary, user-replaceable cost function over
//! circuit statistics. The paper's default (Eqn. 2) prices T gates at an
//! extra 0.5 (poor fault-tolerant fidelity) and CNOTs at an extra 0.25
//! (higher transmon two-qubit error rate) on top of a unit charge per gate.

use qsyn_circuit::{Circuit, CircuitStats};

/// What a cost model cares about when the router picks a strategy on its
/// behalf (the `auto` routing strategy in `qsyn-core`).
///
/// This is a *hint*, not a command: a cost model describes which resource
/// dominates its pricing, and the router maps that onto whichever concrete
/// strategy serves it best. Custom models that do not override
/// [`CostModel::route_hint`] report [`RouteHint::Conservative`], which keeps
/// the paper's baseline CTR router — the safe choice when the model's
/// pricing is opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteHint {
    /// Gate volume / SWAP count dominates: prefer the router that inserts
    /// the fewest SWAPs.
    Swaps,
    /// End-to-end fidelity dominates: prefer the router that minimizes
    /// accumulated two-qubit error.
    Fidelity,
    /// Unknown pricing: keep the baseline (paper-exact) router.
    #[default]
    Conservative,
}

/// A quantum cost function over circuit statistics.
///
/// Implementations must be monotone in each count (removing gates never
/// increases cost), which the optimizer relies on when it strips identity
/// partitions.
pub trait CostModel {
    /// Cost of a circuit with the given statistics. Lower is better.
    fn cost(&self, stats: &CircuitStats) -> f64;

    /// Short human-readable name for reports.
    fn name(&self) -> &str;

    /// Convenience: cost of a circuit.
    fn circuit_cost(&self, circuit: &Circuit) -> f64 {
        self.cost(&circuit.stats())
    }

    /// Cost improvement going from `before` to `after` (positive when the
    /// transformation cheapened the circuit). The trace layer uses this to
    /// attribute cost movement to individual compiler passes.
    fn delta(&self, before: &CircuitStats, after: &CircuitStats) -> f64 {
        self.cost(before) - self.cost(after)
    }

    /// Every tunable parameter that changes this model's pricing without
    /// changing [`name`](CostModel::name). Compile-cache keys fold these in
    /// alongside the name, so two same-named models with different weights
    /// never collide on one cache entry.
    ///
    /// The default returns `None`, which marks the model as not
    /// content-addressable and disables whole-compile memoization for
    /// compilers using it — the safe choice for user-defined models whose
    /// parameters this trait cannot see.
    fn cache_params(&self) -> Option<Vec<f64>> {
        None
    }

    /// Which routing resource this model's pricing is dominated by, used
    /// by the `auto` routing strategy in `qsyn-core` to pick a router on
    /// the model's behalf. Defaults to [`RouteHint::Conservative`] (keep
    /// the paper's CTR baseline), the safe answer for user-defined models.
    fn route_hint(&self) -> RouteHint {
        RouteHint::Conservative
    }
}

/// The paper's Eqn. 2: `q_cost = t_weight * t + cnot_weight * c + a`.
///
/// # Examples
///
/// ```
/// use qsyn_arch::{CostModel, TransmonCost};
/// use qsyn_circuit::Circuit;
/// use qsyn_gate::Gate;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::t(0));
/// c.push(Gate::cx(0, 1));
/// // 0.5 * 1 + 0.25 * 1 + 2 = 2.75
/// assert!((TransmonCost::default().circuit_cost(&c) - 2.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmonCost {
    /// Extra weight per T/T† gate (0.5 in Eqn. 2).
    pub t_weight: f64,
    /// Extra weight per CNOT (0.25 in Eqn. 2).
    pub cnot_weight: f64,
}

impl Default for TransmonCost {
    fn default() -> Self {
        TransmonCost {
            t_weight: 0.5,
            cnot_weight: 0.25,
        }
    }
}

impl TransmonCost {
    /// Creates a transmon cost with custom weights (the paper's prototype
    /// "allows users to easily modify cost function weights").
    pub fn new(t_weight: f64, cnot_weight: f64) -> Self {
        TransmonCost {
            t_weight,
            cnot_weight,
        }
    }
}

impl CostModel for TransmonCost {
    fn cost(&self, s: &CircuitStats) -> f64 {
        self.t_weight * s.t_count as f64 + self.cnot_weight * s.cnot_count as f64 + s.volume as f64
    }

    fn name(&self) -> &str {
        "transmon-eqn2"
    }

    fn cache_params(&self) -> Option<Vec<f64>> {
        Some(vec![self.t_weight, self.cnot_weight])
    }

    fn route_hint(&self) -> RouteHint {
        RouteHint::Swaps
    }
}

/// Pure gate-volume cost (every gate costs one); the simplest baseline used
/// in the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VolumeCost;

impl CostModel for VolumeCost {
    fn cost(&self, s: &CircuitStats) -> f64 {
        s.volume as f64
    }

    fn name(&self) -> &str {
        "volume"
    }

    fn cache_params(&self) -> Option<Vec<f64>> {
        Some(Vec::new())
    }

    fn route_hint(&self) -> RouteHint {
        RouteHint::Swaps
    }
}

/// A fidelity-flavored cost model (the paper mentions experimenting with
/// qubit and operator fidelity instead of decoherence proxies).
///
/// Models each gate as an independent error channel and scores the circuit
/// by its negative log success probability, so costs still add per gate and
/// remain monotone. Default error rates follow the rough magnitudes
/// reported for transmon devices in the paper's references:
/// one-qubit ~1e-3, CNOT ~2.5e-2, T ~4e-3 effective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityCost {
    /// Error probability per one-qubit Clifford gate.
    pub single_error: f64,
    /// Error probability per CNOT.
    pub cnot_error: f64,
    /// Error probability per T/T† gate.
    pub t_error: f64,
}

impl Default for FidelityCost {
    fn default() -> Self {
        FidelityCost {
            single_error: 1e-3,
            cnot_error: 2.5e-2,
            t_error: 4e-3,
        }
    }
}

impl CostModel for FidelityCost {
    fn cost(&self, s: &CircuitStats) -> f64 {
        let per = |count: usize, err: f64| -(count as f64) * (1.0 - err).ln();
        per(s.other_single_count + s.unmapped_multi_count, self.single_error)
            + per(s.cnot_count, self.cnot_error)
            + per(s.t_count, self.t_error)
    }

    fn name(&self) -> &str {
        "fidelity"
    }

    fn cache_params(&self) -> Option<Vec<f64>> {
        Some(vec![self.single_error, self.cnot_error, self.t_error])
    }

    fn route_hint(&self) -> RouteHint {
        RouteHint::Fidelity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::t(0));
        c.push(Gate::t(1));
        c.push(Gate::h(2));
        c.push(Gate::cx(0, 1));
        c
    }

    #[test]
    fn eqn2_matches_hand_computation() {
        // t = 2, c = 1, a = 4 -> 0.5*2 + 0.25*1 + 4 = 5.25
        let cost = TransmonCost::default().circuit_cost(&sample());
        assert!((cost - 5.25).abs() < 1e-12);
    }

    #[test]
    fn eqn2_reproduces_table3_tech_independent_rows() {
        // Table 3 row "#1": 7 T gates, 17 total, cost 22.25 -> 7 CNOTs.
        let s = CircuitStats {
            t_count: 7,
            cnot_count: 7,
            volume: 17,
            other_single_count: 3,
            unmapped_multi_count: 0,
            max_mct_controls: 0,
        };
        assert!((TransmonCost::default().cost(&s) - 22.25).abs() < 1e-12);
        // Row "#0007": 16 T, 60 gates, cost 75 -> 28 CNOTs.
        let s2 = CircuitStats {
            t_count: 16,
            cnot_count: 28,
            volume: 60,
            other_single_count: 16,
            unmapped_multi_count: 0,
            max_mct_controls: 0,
        };
        assert!((TransmonCost::default().cost(&s2) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn custom_weights() {
        let m = TransmonCost::new(2.0, 1.0);
        // t=2, c=1, a=4 -> 2*2 + 1*1 + 4 = 9
        assert!((m.circuit_cost(&sample()) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn volume_cost_counts_gates() {
        assert!((VolumeCost.circuit_cost(&sample()) - 4.0).abs() < 1e-12);
        assert_eq!(VolumeCost.name(), "volume");
    }

    #[test]
    fn fidelity_cost_is_monotone_in_gates() {
        let m = FidelityCost::default();
        let small = m.circuit_cost(&sample());
        let mut bigger = sample();
        bigger.push(Gate::cx(1, 2));
        assert!(m.circuit_cost(&bigger) > small);
        assert!(small > 0.0);
    }

    #[test]
    fn empty_circuit_costs_zero() {
        let empty = Circuit::new(2);
        assert_eq!(TransmonCost::default().circuit_cost(&empty), 0.0);
        assert_eq!(FidelityCost::default().circuit_cost(&empty), 0.0);
    }

    #[test]
    fn delta_attributes_cost_movement() {
        let m = TransmonCost::default();
        let before = sample().stats();
        let mut smaller = sample();
        smaller.gates_mut().pop();
        let after = smaller.stats();
        assert!(m.delta(&before, &after) > 0.0, "removing a gate helps");
        assert_eq!(m.delta(&before, &before), 0.0);
    }

    #[test]
    fn route_hints_follow_the_dominant_resource() {
        assert_eq!(TransmonCost::default().route_hint(), RouteHint::Swaps);
        assert_eq!(VolumeCost.route_hint(), RouteHint::Swaps);
        assert_eq!(FidelityCost::default().route_hint(), RouteHint::Fidelity);
        // A model that overrides nothing stays conservative.
        struct Opaque;
        impl CostModel for Opaque {
            fn cost(&self, s: &CircuitStats) -> f64 {
                s.volume as f64
            }
            fn name(&self) -> &str {
                "opaque"
            }
        }
        assert_eq!(Opaque.route_hint(), RouteHint::Conservative);
    }

    #[test]
    fn cost_models_are_object_safe() {
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(TransmonCost::default()),
            Box::new(VolumeCost),
            Box::new(FidelityCost::default()),
        ];
        for m in &models {
            assert!(m.circuit_cost(&sample()) > 0.0);
            assert!(!m.name().is_empty());
        }
    }
}
