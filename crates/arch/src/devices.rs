//! The built-in device library: the five public IBM Q machines of the paper
//! (Table 2), the unconstrained simulator, and the 96-qubit ibmqx5-inspired
//! experimental layout (paper Fig. 7).
//!
//! Coupling maps are transcribed verbatim from Section 3 of the paper
//! (which sourced them from the IBM Q backend specifications V1.x, 2018).

use crate::device::Device;

/// `ibmqx2` (Yorktown), 5 qubits, released Jan. 2017.
pub fn ibmqx2() -> Device {
    Device::from_coupling_map(
        "ibmqx2",
        5,
        &[(0, &[1, 2]), (1, &[2]), (3, &[2, 4]), (4, &[2])],
    )
}

/// `ibmqx3`, 16 qubits, released June 2017 (retired).
pub fn ibmqx3() -> Device {
    Device::from_coupling_map(
        "ibmqx3",
        16,
        &[
            (0, &[1]),
            (1, &[2]),
            (2, &[3]),
            (3, &[14]),
            (4, &[3, 5]),
            (6, &[7, 11]),
            (7, &[10]),
            (8, &[7]),
            (9, &[8, 10]),
            (11, &[10]),
            (12, &[5, 11, 13]),
            (13, &[4, 14]),
            (15, &[0, 14]),
        ],
    )
}

/// `ibmqx4` (Tenerife), 5 qubits, released Sept. 2017.
pub fn ibmqx4() -> Device {
    Device::from_coupling_map(
        "ibmqx4",
        5,
        &[(1, &[0]), (2, &[0, 1]), (3, &[2, 4]), (4, &[2])],
    )
}

/// `ibmqx5` (Rueschlikon), 16 qubits, released Sept. 2017 (retired).
pub fn ibmqx5() -> Device {
    Device::from_coupling_map(
        "ibmqx5",
        16,
        &[
            (1, &[0, 2]),
            (2, &[3]),
            (3, &[4, 14]),
            (5, &[4]),
            (6, &[5, 7, 11]),
            (7, &[10]),
            (8, &[7]),
            (9, &[8, 10]),
            (11, &[10]),
            (12, &[5, 11, 13]),
            (13, &[4, 14]),
            (15, &[0, 2, 14]),
        ],
    )
}

/// `ibmq_16` (Melbourne), 14 qubits, released Sept. 2018.
pub fn ibmq_16() -> Device {
    Device::from_coupling_map(
        "ibmq_16",
        14,
        &[
            (1, &[0, 2]),
            (2, &[3]),
            (4, &[3, 10]),
            (5, &[4, 6, 9]),
            (6, &[8]),
            (7, &[8]),
            (9, &[8, 10]),
            (11, &[3, 10, 12]),
            (12, &[2]),
            (13, &[1, 12]),
        ],
    )
}

/// The proposed 96-qubit transmon machine of paper Fig. 7.
///
/// The paper shows the layout only as a figure and describes it as
/// "inspired by the ibmqx5 machine". This reconstruction stacks six
/// 16-qubit ibmqx5-style rings (ring `r` occupies qubits `16r .. 16r+15`,
/// with the ibmqx5 coupling pattern relabeled into the ring) and joins
/// consecutive rings with three directed rungs at local offsets 2, 7 and 12.
/// The resulting directed graph is connected, sparse (coupling complexity
/// of the same order as the 16-qubit IBM machines), and exercises the same
/// long-distance SWAP routing pressure that drives the paper's Table 8.
pub fn qc96() -> Device {
    let ring: &[(usize, &[usize])] = &[
        (1, &[0, 2]),
        (2, &[3]),
        (3, &[4, 14]),
        (5, &[4]),
        (6, &[5, 7, 11]),
        (7, &[10]),
        (8, &[7]),
        (9, &[8, 10]),
        (11, &[10]),
        (12, &[5, 11, 13]),
        (13, &[4, 14]),
        (15, &[0, 2, 14]),
    ];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for r in 0..6 {
        let base = 16 * r;
        for (c, targets) in ring {
            for t in *targets {
                pairs.push((base + c, base + t));
            }
        }
        if r + 1 < 6 {
            for offset in [2usize, 7, 12] {
                pairs.push((base + offset, base + 16 + offset));
            }
        }
    }
    Device::from_pairs("qc96", 96, pairs)
}

/// The 20-qubit commercial IBM machine the paper mentions in Section 3
/// ("IBM also has a 20 qubit machine available for commercial use") —
/// the Tokyo-generation 4x5 lattice with diagonal cross-couplings.
///
/// The paper gives no coupling map for it; this reconstruction follows the
/// published IBM Q20 Tokyo topology (bidirectional grid rows/columns plus
/// the characteristic diagonal pairs), included so width-20 workloads have
/// a realistic target.
pub fn ibmq20() -> Device {
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    // 4 rows x 5 columns, row-major; grid edges both directions.
    for r in 0..4usize {
        for c in 0..5usize {
            let q = r * 5 + c;
            if c + 1 < 5 {
                pairs.push((q, q + 1));
                pairs.push((q + 1, q));
            }
            if r + 1 < 4 {
                pairs.push((q, q + 5));
                pairs.push((q + 5, q));
            }
        }
    }
    // Diagonal cross-couplings of the Tokyo lattice.
    for (a, b) in [(1, 7), (2, 6), (3, 9), (4, 8), (11, 17), (12, 16), (13, 19), (14, 18)] {
        pairs.push((a, b));
        pairs.push((b, a));
    }
    Device::from_pairs("ibmq20", 20, pairs)
}

/// A unidirectional line `q0 -> q1 -> ... -> q(n-1)` — the linear
/// nearest-neighbor (LNN) architecture of the paper's reference \[3\].
pub fn line(n: usize) -> Device {
    Device::from_pairs(format!("line{n}"), n, (1..n).map(|i| (i - 1, i)))
}

/// A unidirectional ring: the line plus a closing `q(n-1) -> q0` edge.
pub fn ring(n: usize) -> Device {
    Device::from_pairs(format!("ring{n}"), n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// A star: `q0` drives every other qubit (maximum-degree hub).
pub fn star(n: usize) -> Device {
    Device::from_pairs(format!("star{n}"), n, (1..n).map(|t| (0usize, t)))
}

/// A `rows x cols` grid with rightward and downward couplings — the
/// 2D-lattice style of most planar transmon proposals.
pub fn grid(rows: usize, cols: usize) -> Device {
    let mut pairs = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let q = r * cols + c;
            if c + 1 < cols {
                pairs.push((q, q + 1));
            }
            if r + 1 < rows {
                pairs.push((q, q + cols));
            }
        }
    }
    Device::from_pairs(format!("grid{rows}x{cols}"), rows * cols, pairs)
}

/// Deterministic synthetic CNOT error probability for a directed coupling
/// of a generated device family.
///
/// Derived from an FNV-1a hash of the (control, target) pair alone, so the
/// annotation — and hence the device fingerprint — depends only on the
/// coupling set, never on construction order. Values land in
/// `[5e-3, 2e-2)`, the rough transmon range the paper's references report,
/// and the two orientations of an edge hash differently so fidelity-aware
/// routing has real asymmetry to exploit.
fn synthetic_cnot_error(control: usize, target: usize) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in control
        .to_le_bytes()
        .into_iter()
        .chain(target.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    5e-3 + 1.5e-2 * ((h % 1024) as f64 / 1024.0)
}

/// Annotates every coupling of a generated device with its synthetic
/// calibration datum, enabling the `HighestFidelity` routing objective.
fn with_synthetic_calibration(mut device: Device) -> Device {
    let pairs: Vec<(usize, usize)> = device.couplings().collect();
    for (c, t) in pairs {
        device.set_cnot_error(c, t, synthetic_cnot_error(c, t));
    }
    device
}

/// The generated linear-nearest-neighbor family `lnn(n)`: a bidirectional
/// chain `q0 <-> q1 <-> ... <-> q(n-1)` with synthetic calibration data.
///
/// Unlike the unidirectional [`line()`], every edge is natively available in
/// both orientations (no Fig. 6 reversal) and every coupling carries an
/// error annotation, so both routing objectives are exercised. This is the
/// LNN architecture of the synthesis literature scaled to arbitrary width.
pub fn lnn(n: usize) -> Device {
    let pairs = (1..n).flat_map(|i| [(i - 1, i), (i, i - 1)]);
    with_synthetic_calibration(Device::from_pairs(format!("lnn{n}"), n, pairs))
}

/// The generated 2D-lattice family `grid_calibrated(w, h)`: a bidirectional
/// `w x h` grid (row-major, `w` columns per row) with synthetic calibration
/// data, the planar-transmon topology scaled to thousands of qubits.
///
/// Distinct from the legacy unidirectional [`grid`]: every edge exists in
/// both orientations and carries an error annotation.
pub fn grid_calibrated(w: usize, h: usize) -> Device {
    let mut pairs = Vec::new();
    for r in 0..h {
        for c in 0..w {
            let q = r * w + c;
            if c + 1 < w {
                pairs.push((q, q + 1));
                pairs.push((q + 1, q));
            }
            if r + 1 < h {
                pairs.push((q, q + w));
                pairs.push((q + w, q));
            }
        }
    }
    with_synthetic_calibration(Device::from_pairs(format!("grid{w}x{h}"), w * h, pairs))
}

/// The generated heavy-hexagon family `heavy_hex(d)`: a `d x d`-cell
/// brick-wall honeycomb lattice with every edge subdivided by an extra
/// qubit (the "heavy" decoration of IBM's heavy-hex processors), all edges
/// bidirectional, with synthetic calibration data.
///
/// Vertex qubits have degree at most 3 and edge qubits exactly 2. The
/// qubit count is `(d + 1) * (5d + 3)`: 72 at `d = 3`, 1095 at `d = 14`,
/// 3864 at `d = 27`.
pub fn heavy_hex(d: usize) -> Device {
    assert!(d >= 1, "heavy-hex distance must be at least 1");
    // Brick-wall honeycomb vertices on a (2d+2) x (d+1) grid; vertical
    // edges only where (x + y) is even, which caps vertex degree at 3.
    let w = 2 * d + 1;
    let vertex = |x: usize, y: usize| y * (w + 1) + x;
    let n_vertices = (w + 1) * (d + 1);
    let mut lattice_edges: Vec<(usize, usize)> = Vec::new();
    for y in 0..=d {
        for x in 0..w {
            lattice_edges.push((vertex(x, y), vertex(x + 1, y)));
        }
    }
    for y in 0..d {
        for x in 0..=w {
            if (x + y) % 2 == 0 {
                lattice_edges.push((vertex(x, y), vertex(x, y + 1)));
            }
        }
    }
    // Subdivide every lattice edge with a middle ("heavy") qubit.
    let mut pairs = Vec::new();
    for (i, &(a, b)) in lattice_edges.iter().enumerate() {
        let mid = n_vertices + i;
        pairs.extend([(a, mid), (mid, a), (mid, b), (b, mid)]);
    }
    let n = n_vertices + lattice_edges.len();
    with_synthetic_calibration(Device::from_pairs(format!("heavyhex{d}"), n, pairs))
}

/// Every physical device of the library, in Table 2 order followed by the
/// 96-qubit machine.
pub fn all_devices() -> Vec<Device> {
    vec![ibmqx2(), ibmqx3(), ibmqx4(), ibmqx5(), ibmq_16(), qc96()]
}

/// The five IBM devices evaluated in Tables 3-6, in column order.
pub fn ibm_devices() -> Vec<Device> {
    vec![ibmqx2(), ibmqx3(), ibmqx4(), ibmqx5(), ibmq_16()]
}

/// Widest device `device_by_name` will generate (guards CLI typos from
/// allocating gigabyte coupling maps).
pub const MAX_GENERATED_QUBITS: usize = 65_536;

/// Looks a device up by name: the built-in library, `"simulator:<n>"`, and
/// the generated families `"lnn:<n>"`, `"grid:<w>x<h>"` and
/// `"heavy-hex:<d>"` (all capped at [`MAX_GENERATED_QUBITS`]).
pub fn device_by_name(name: &str) -> Option<Device> {
    if let Some(n) = name.strip_prefix("simulator:") {
        return n.parse().ok().map(Device::simulator);
    }
    if let Some(n) = name.strip_prefix("lnn:") {
        return n
            .parse()
            .ok()
            .filter(|&n: &usize| (2..=MAX_GENERATED_QUBITS).contains(&n))
            .map(lnn);
    }
    if let Some(dims) = name.strip_prefix("grid:") {
        let (w, h) = dims.split_once('x')?;
        let (w, h): (usize, usize) = (w.parse().ok()?, h.parse().ok()?);
        if w == 0 || h == 0 || w.checked_mul(h)? > MAX_GENERATED_QUBITS {
            return None;
        }
        return Some(grid_calibrated(w, h));
    }
    if let Some(d) = name.strip_prefix("heavy-hex:") {
        return d
            .parse()
            .ok()
            .filter(|&d: &usize| d >= 1 && (d + 1) * (5 * d + 3) <= MAX_GENERATED_QUBITS)
            .map(heavy_hex);
    }
    match name {
        "ibmqx2" => Some(ibmqx2()),
        "ibmqx3" => Some(ibmqx3()),
        "ibmqx4" => Some(ibmqx4()),
        "ibmqx5" => Some(ibmqx5()),
        "ibmq_16" => Some(ibmq_16()),
        "ibmq20" => Some(ibmq20()),
        "qc96" => Some(qc96()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_qubit_counts() {
        assert_eq!(ibmqx2().n_qubits(), 5);
        assert_eq!(ibmqx3().n_qubits(), 16);
        assert_eq!(ibmqx4().n_qubits(), 5);
        assert_eq!(ibmqx5().n_qubits(), 16);
        assert_eq!(ibmq_16().n_qubits(), 14);
    }

    #[test]
    fn table2_coupling_complexities_match_paper_exactly() {
        assert!((ibmqx2().coupling_complexity() - 0.3).abs() < 1e-9);
        assert!((ibmqx3().coupling_complexity() - 1.0 / 12.0).abs() < 1e-9); // 0.0833...
        assert!((ibmqx4().coupling_complexity() - 0.3).abs() < 1e-9);
        assert!((ibmqx5().coupling_complexity() - 22.0 / 240.0).abs() < 1e-9); // 0.091666...
        assert!((ibmq_16().coupling_complexity() - 18.0 / 182.0).abs() < 1e-9); // 0.098901...
    }

    #[test]
    fn all_devices_are_connected() {
        for d in all_devices() {
            assert!(d.is_connected(), "{} disconnected", d.name());
        }
    }

    #[test]
    fn fig5_prerequisites_on_ibmqx3() {
        // q5 and q10 are not adjacent; q11 couples to q10; q12 couples to
        // both q5 and q11 — the structure behind the paper's CTR example.
        let d = ibmqx3();
        assert!(!d.are_adjacent(5, 10));
        assert!(d.has_coupling(11, 10));
        assert!(d.has_coupling(12, 5));
        assert!(d.has_coupling(12, 11));
    }

    #[test]
    fn qc96_shape() {
        let d = qc96();
        assert_eq!(d.n_qubits(), 96);
        assert!(d.is_connected());
        // Six rings of 22 couplings plus 5 * 3 rungs.
        assert_eq!(d.coupling_count(), 6 * 22 + 5 * 3);
        assert!(d.coupling_complexity() < 0.02);
        // Benchmarks target q25/q45/q65/q85, which must exist and couple.
        assert!(!d.neighbors(25).is_empty());
        assert!(!d.neighbors(85).is_empty());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(device_by_name("ibmqx4").unwrap().n_qubits(), 5);
        assert_eq!(device_by_name("qc96").unwrap().n_qubits(), 96);
        assert_eq!(device_by_name("simulator:7").unwrap().n_qubits(), 7);
        assert!(device_by_name("nonsense").is_none());
    }

    #[test]
    fn ibmq20_is_a_dense_20_qubit_lattice() {
        let d = ibmq20();
        assert_eq!(d.n_qubits(), 20);
        assert!(d.is_connected());
        // Bidirectional: every coupling exists in both orientations.
        for (c, t) in d.couplings().collect::<Vec<_>>() {
            assert!(d.has_coupling(t, c), "{c}->{t} not symmetric");
        }
        // Denser than the 16-qubit unidirectional machines.
        assert!(d.coupling_complexity() > ibmqx5().coupling_complexity());
        // Grid + diagonals: 2*(15 + 16) + 2*8 = 78 directed couplings.
        assert_eq!(d.coupling_count(), 78);
    }

    #[test]
    fn parametric_topologies() {
        let l = line(5);
        assert_eq!(l.coupling_count(), 4);
        assert!(l.is_connected());
        assert!(l.has_coupling(0, 1) && !l.has_coupling(1, 0));

        let r = ring(5);
        assert_eq!(r.coupling_count(), 5);
        assert!(r.has_coupling(4, 0));

        let s = star(5);
        assert_eq!(s.neighbors(0).len(), 4);
        assert_eq!(s.neighbors(3), &[0]);

        let g = grid(3, 4);
        assert_eq!(g.n_qubits(), 12);
        assert_eq!(g.coupling_count(), 3 * 3 + 2 * 4); // right + down edges
        assert!(g.is_connected());
        assert!(g.has_coupling(0, 1) && g.has_coupling(0, 4));
    }

    #[test]
    fn topology_complexity_ordering() {
        // Star and ring of equal size are denser than the line; the
        // simulator dominates everything.
        let n = 8;
        let cl = line(n).coupling_complexity();
        let cr = ring(n).coupling_complexity();
        let cs = Device::simulator(n).coupling_complexity();
        assert!(cl < cr && cr < cs);
    }

    #[test]
    fn generated_families_are_connected_calibrated_and_symmetric() {
        for d in [lnn(100), grid_calibrated(8, 8), heavy_hex(3)] {
            assert!(d.is_connected(), "{} disconnected", d.name());
            assert!(d.has_error_data(), "{} uncalibrated", d.name());
            for (c, t) in d.couplings().collect::<Vec<_>>() {
                assert!(d.has_coupling(t, c), "{}: {c}->{t} not symmetric", d.name());
                let e = d.cnot_error(c, t).unwrap();
                assert!((5e-3..2e-2).contains(&e), "{}: error {e} out of band", d.name());
            }
        }
    }

    #[test]
    fn generated_family_shapes() {
        assert_eq!(lnn(256).n_qubits(), 256);
        assert_eq!(lnn(256).coupling_count(), 2 * 255);
        let g = grid_calibrated(32, 32);
        assert_eq!(g.n_qubits(), 1024);
        assert_eq!(g.coupling_count(), 2 * (2 * 31 * 32));
        let hh = heavy_hex(3);
        assert_eq!(hh.n_qubits(), (3 + 1) * (5 * 3 + 3)); // 72
        // Vertex qubits cap at degree 3, middles at 2.
        for q in 0..hh.n_qubits() {
            assert!(hh.neighbors(q).len() <= 3, "q{q} overconnected");
        }
    }

    #[test]
    fn synthetic_calibration_is_orientation_asymmetric_and_stable() {
        let d = lnn(10);
        let forward = d.cnot_error(3, 4).unwrap();
        let reverse = d.cnot_error(4, 3).unwrap();
        assert_ne!(forward, reverse, "orientations must differ");
        assert_eq!(d.fingerprint(), lnn(10).fingerprint(), "deterministic");
    }

    #[test]
    fn generated_names_parse() {
        assert_eq!(device_by_name("lnn:100").unwrap().n_qubits(), 100);
        assert_eq!(device_by_name("grid:32x32").unwrap().n_qubits(), 1024);
        assert_eq!(device_by_name("heavy-hex:7").unwrap().n_qubits(), (7 + 1) * (5 * 7 + 3));
        for bad in ["lnn:1", "lnn:x", "grid:0x5", "grid:4", "grid:999x999", "heavy-hex:0"] {
            assert!(device_by_name(bad).is_none(), "{bad} must not parse");
        }
    }

    #[test]
    fn ibm_devices_order_matches_table_columns() {
        let names: Vec<String> = ibm_devices().iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, ["ibmqx2", "ibmqx3", "ibmqx4", "ibmqx5", "ibmq_16"]);
    }
}
