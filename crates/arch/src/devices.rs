//! The built-in device library: the five public IBM Q machines of the paper
//! (Table 2), the unconstrained simulator, and the 96-qubit ibmqx5-inspired
//! experimental layout (paper Fig. 7).
//!
//! Coupling maps are transcribed verbatim from Section 3 of the paper
//! (which sourced them from the IBM Q backend specifications V1.x, 2018).

use crate::device::Device;

/// `ibmqx2` (Yorktown), 5 qubits, released Jan. 2017.
pub fn ibmqx2() -> Device {
    Device::from_coupling_map(
        "ibmqx2",
        5,
        &[(0, &[1, 2]), (1, &[2]), (3, &[2, 4]), (4, &[2])],
    )
}

/// `ibmqx3`, 16 qubits, released June 2017 (retired).
pub fn ibmqx3() -> Device {
    Device::from_coupling_map(
        "ibmqx3",
        16,
        &[
            (0, &[1]),
            (1, &[2]),
            (2, &[3]),
            (3, &[14]),
            (4, &[3, 5]),
            (6, &[7, 11]),
            (7, &[10]),
            (8, &[7]),
            (9, &[8, 10]),
            (11, &[10]),
            (12, &[5, 11, 13]),
            (13, &[4, 14]),
            (15, &[0, 14]),
        ],
    )
}

/// `ibmqx4` (Tenerife), 5 qubits, released Sept. 2017.
pub fn ibmqx4() -> Device {
    Device::from_coupling_map(
        "ibmqx4",
        5,
        &[(1, &[0]), (2, &[0, 1]), (3, &[2, 4]), (4, &[2])],
    )
}

/// `ibmqx5` (Rueschlikon), 16 qubits, released Sept. 2017 (retired).
pub fn ibmqx5() -> Device {
    Device::from_coupling_map(
        "ibmqx5",
        16,
        &[
            (1, &[0, 2]),
            (2, &[3]),
            (3, &[4, 14]),
            (5, &[4]),
            (6, &[5, 7, 11]),
            (7, &[10]),
            (8, &[7]),
            (9, &[8, 10]),
            (11, &[10]),
            (12, &[5, 11, 13]),
            (13, &[4, 14]),
            (15, &[0, 2, 14]),
        ],
    )
}

/// `ibmq_16` (Melbourne), 14 qubits, released Sept. 2018.
pub fn ibmq_16() -> Device {
    Device::from_coupling_map(
        "ibmq_16",
        14,
        &[
            (1, &[0, 2]),
            (2, &[3]),
            (4, &[3, 10]),
            (5, &[4, 6, 9]),
            (6, &[8]),
            (7, &[8]),
            (9, &[8, 10]),
            (11, &[3, 10, 12]),
            (12, &[2]),
            (13, &[1, 12]),
        ],
    )
}

/// The proposed 96-qubit transmon machine of paper Fig. 7.
///
/// The paper shows the layout only as a figure and describes it as
/// "inspired by the ibmqx5 machine". This reconstruction stacks six
/// 16-qubit ibmqx5-style rings (ring `r` occupies qubits `16r .. 16r+15`,
/// with the ibmqx5 coupling pattern relabeled into the ring) and joins
/// consecutive rings with three directed rungs at local offsets 2, 7 and 12.
/// The resulting directed graph is connected, sparse (coupling complexity
/// of the same order as the 16-qubit IBM machines), and exercises the same
/// long-distance SWAP routing pressure that drives the paper's Table 8.
pub fn qc96() -> Device {
    let ring: &[(usize, &[usize])] = &[
        (1, &[0, 2]),
        (2, &[3]),
        (3, &[4, 14]),
        (5, &[4]),
        (6, &[5, 7, 11]),
        (7, &[10]),
        (8, &[7]),
        (9, &[8, 10]),
        (11, &[10]),
        (12, &[5, 11, 13]),
        (13, &[4, 14]),
        (15, &[0, 2, 14]),
    ];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for r in 0..6 {
        let base = 16 * r;
        for (c, targets) in ring {
            for t in *targets {
                pairs.push((base + c, base + t));
            }
        }
        if r + 1 < 6 {
            for offset in [2usize, 7, 12] {
                pairs.push((base + offset, base + 16 + offset));
            }
        }
    }
    Device::from_pairs("qc96", 96, pairs)
}

/// The 20-qubit commercial IBM machine the paper mentions in Section 3
/// ("IBM also has a 20 qubit machine available for commercial use") —
/// the Tokyo-generation 4x5 lattice with diagonal cross-couplings.
///
/// The paper gives no coupling map for it; this reconstruction follows the
/// published IBM Q20 Tokyo topology (bidirectional grid rows/columns plus
/// the characteristic diagonal pairs), included so width-20 workloads have
/// a realistic target.
pub fn ibmq20() -> Device {
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    // 4 rows x 5 columns, row-major; grid edges both directions.
    for r in 0..4usize {
        for c in 0..5usize {
            let q = r * 5 + c;
            if c + 1 < 5 {
                pairs.push((q, q + 1));
                pairs.push((q + 1, q));
            }
            if r + 1 < 4 {
                pairs.push((q, q + 5));
                pairs.push((q + 5, q));
            }
        }
    }
    // Diagonal cross-couplings of the Tokyo lattice.
    for (a, b) in [(1, 7), (2, 6), (3, 9), (4, 8), (11, 17), (12, 16), (13, 19), (14, 18)] {
        pairs.push((a, b));
        pairs.push((b, a));
    }
    Device::from_pairs("ibmq20", 20, pairs)
}

/// A unidirectional line `q0 -> q1 -> ... -> q(n-1)` — the linear
/// nearest-neighbor (LNN) architecture of the paper's reference \[3\].
pub fn line(n: usize) -> Device {
    Device::from_pairs(format!("line{n}"), n, (1..n).map(|i| (i - 1, i)))
}

/// A unidirectional ring: the line plus a closing `q(n-1) -> q0` edge.
pub fn ring(n: usize) -> Device {
    Device::from_pairs(format!("ring{n}"), n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// A star: `q0` drives every other qubit (maximum-degree hub).
pub fn star(n: usize) -> Device {
    Device::from_pairs(format!("star{n}"), n, (1..n).map(|t| (0usize, t)))
}

/// A `rows x cols` grid with rightward and downward couplings — the
/// 2D-lattice style of most planar transmon proposals.
pub fn grid(rows: usize, cols: usize) -> Device {
    let mut pairs = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let q = r * cols + c;
            if c + 1 < cols {
                pairs.push((q, q + 1));
            }
            if r + 1 < rows {
                pairs.push((q, q + cols));
            }
        }
    }
    Device::from_pairs(format!("grid{rows}x{cols}"), rows * cols, pairs)
}

/// Every physical device of the library, in Table 2 order followed by the
/// 96-qubit machine.
pub fn all_devices() -> Vec<Device> {
    vec![ibmqx2(), ibmqx3(), ibmqx4(), ibmqx5(), ibmq_16(), qc96()]
}

/// The five IBM devices evaluated in Tables 3-6, in column order.
pub fn ibm_devices() -> Vec<Device> {
    vec![ibmqx2(), ibmqx3(), ibmqx4(), ibmqx5(), ibmq_16()]
}

/// Looks a device up by name (including `"simulator"` at a given size via
/// `"simulator:<n>"`).
pub fn device_by_name(name: &str) -> Option<Device> {
    if let Some(n) = name.strip_prefix("simulator:") {
        return n.parse().ok().map(Device::simulator);
    }
    match name {
        "ibmqx2" => Some(ibmqx2()),
        "ibmqx3" => Some(ibmqx3()),
        "ibmqx4" => Some(ibmqx4()),
        "ibmqx5" => Some(ibmqx5()),
        "ibmq_16" => Some(ibmq_16()),
        "ibmq20" => Some(ibmq20()),
        "qc96" => Some(qc96()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_qubit_counts() {
        assert_eq!(ibmqx2().n_qubits(), 5);
        assert_eq!(ibmqx3().n_qubits(), 16);
        assert_eq!(ibmqx4().n_qubits(), 5);
        assert_eq!(ibmqx5().n_qubits(), 16);
        assert_eq!(ibmq_16().n_qubits(), 14);
    }

    #[test]
    fn table2_coupling_complexities_match_paper_exactly() {
        assert!((ibmqx2().coupling_complexity() - 0.3).abs() < 1e-9);
        assert!((ibmqx3().coupling_complexity() - 1.0 / 12.0).abs() < 1e-9); // 0.0833...
        assert!((ibmqx4().coupling_complexity() - 0.3).abs() < 1e-9);
        assert!((ibmqx5().coupling_complexity() - 22.0 / 240.0).abs() < 1e-9); // 0.091666...
        assert!((ibmq_16().coupling_complexity() - 18.0 / 182.0).abs() < 1e-9); // 0.098901...
    }

    #[test]
    fn all_devices_are_connected() {
        for d in all_devices() {
            assert!(d.is_connected(), "{} disconnected", d.name());
        }
    }

    #[test]
    fn fig5_prerequisites_on_ibmqx3() {
        // q5 and q10 are not adjacent; q11 couples to q10; q12 couples to
        // both q5 and q11 — the structure behind the paper's CTR example.
        let d = ibmqx3();
        assert!(!d.are_adjacent(5, 10));
        assert!(d.has_coupling(11, 10));
        assert!(d.has_coupling(12, 5));
        assert!(d.has_coupling(12, 11));
    }

    #[test]
    fn qc96_shape() {
        let d = qc96();
        assert_eq!(d.n_qubits(), 96);
        assert!(d.is_connected());
        // Six rings of 22 couplings plus 5 * 3 rungs.
        assert_eq!(d.coupling_count(), 6 * 22 + 5 * 3);
        assert!(d.coupling_complexity() < 0.02);
        // Benchmarks target q25/q45/q65/q85, which must exist and couple.
        assert!(!d.neighbors(25).is_empty());
        assert!(!d.neighbors(85).is_empty());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(device_by_name("ibmqx4").unwrap().n_qubits(), 5);
        assert_eq!(device_by_name("qc96").unwrap().n_qubits(), 96);
        assert_eq!(device_by_name("simulator:7").unwrap().n_qubits(), 7);
        assert!(device_by_name("nonsense").is_none());
    }

    #[test]
    fn ibmq20_is_a_dense_20_qubit_lattice() {
        let d = ibmq20();
        assert_eq!(d.n_qubits(), 20);
        assert!(d.is_connected());
        // Bidirectional: every coupling exists in both orientations.
        for (c, t) in d.couplings().collect::<Vec<_>>() {
            assert!(d.has_coupling(t, c), "{c}->{t} not symmetric");
        }
        // Denser than the 16-qubit unidirectional machines.
        assert!(d.coupling_complexity() > ibmqx5().coupling_complexity());
        // Grid + diagonals: 2*(15 + 16) + 2*8 = 78 directed couplings.
        assert_eq!(d.coupling_count(), 78);
    }

    #[test]
    fn parametric_topologies() {
        let l = line(5);
        assert_eq!(l.coupling_count(), 4);
        assert!(l.is_connected());
        assert!(l.has_coupling(0, 1) && !l.has_coupling(1, 0));

        let r = ring(5);
        assert_eq!(r.coupling_count(), 5);
        assert!(r.has_coupling(4, 0));

        let s = star(5);
        assert_eq!(s.neighbors(0).len(), 4);
        assert_eq!(s.neighbors(3), &[0]);

        let g = grid(3, 4);
        assert_eq!(g.n_qubits(), 12);
        assert_eq!(g.coupling_count(), 3 * 3 + 2 * 4); // right + down edges
        assert!(g.is_connected());
        assert!(g.has_coupling(0, 1) && g.has_coupling(0, 4));
    }

    #[test]
    fn topology_complexity_ordering() {
        // Star and ring of equal size are denser than the line; the
        // simulator dominates everything.
        let n = 8;
        let cl = line(n).coupling_complexity();
        let cr = ring(n).coupling_complexity();
        let cs = Device::simulator(n).coupling_complexity();
        assert!(cl < cr && cr < cs);
    }

    #[test]
    fn ibm_devices_order_matches_table_columns() {
        let names: Vec<String> = ibm_devices().iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, ["ibmqx2", "ibmqx3", "ibmqx4", "ibmqx5", "ibmq_16"]);
    }
}
