//! Textual device descriptions, so new machines can be added to the tool
//! without recompiling (the paper: "additional architectures can be
//! targeted for synthesis by adding the desired topology coupling map to
//! the device library of the tool").
//!
//! Format (`.device` files):
//!
//! ```text
//! # my lab chip
//! name labchip
//! qubits 6
//! native cnot            # or `cz`; optional, defaults to cnot
//! coupling 0 1           # directed: control 0, target 1
//! coupling 1 2 0.015     # optional CNOT error probability
//! ```

use crate::device::{Device, TwoQubitNative};
use std::fmt::Write as _;

/// Parses a textual device description.
///
/// # Errors
///
/// Returns a message naming the offending line for malformed directives,
/// missing `name`/`qubits`, out-of-range couplings, or bad error values.
pub fn parse_device(src: &str) -> Result<Device, String> {
    let mut name: Option<String> = None;
    let mut qubits: Option<usize> = None;
    let mut native = TwoQubitNative::Cnot;
    let mut couplings: Vec<(usize, usize)> = Vec::new();
    let mut errors: Vec<((usize, usize), f64)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("name") => {
                name = Some(
                    toks.next()
                        .ok_or(format!("line {lineno}: missing name value"))?
                        .to_string(),
                )
            }
            Some("qubits") => {
                qubits = Some(
                    toks.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &usize| v >= 1)
                        .ok_or(format!("line {lineno}: bad qubit count"))?,
                )
            }
            Some("native") => match toks.next() {
                Some("cnot") | Some("cx") => native = TwoQubitNative::Cnot,
                Some("cz") => native = TwoQubitNative::Cz,
                other => return Err(format!("line {lineno}: unknown native gate {other:?}")),
            },
            Some("coupling") => {
                let n = qubits.ok_or(format!("line {lineno}: coupling before qubits"))?;
                let c: usize = toks
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("line {lineno}: bad control"))?;
                let t: usize = toks
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("line {lineno}: bad target"))?;
                if c >= n || t >= n {
                    return Err(format!("line {lineno}: coupling {c}->{t} out of range"));
                }
                if c == t {
                    return Err(format!("line {lineno}: self-coupling {c}"));
                }
                couplings.push((c, t));
                if let Some(e) = toks.next() {
                    let e: f64 = e
                        .parse()
                        .ok()
                        .filter(|v| (0.0..1.0).contains(v))
                        .ok_or(format!("line {lineno}: bad error probability"))?;
                    errors.push(((c, t), e));
                }
            }
            other => return Err(format!("line {lineno}: unknown directive {other:?}")),
        }
    }

    let device = Device::from_pairs(
        name.ok_or("missing `name`")?,
        qubits.ok_or("missing `qubits`")?,
        couplings,
    )
    .with_native(native)
    .with_cnot_errors(errors);
    Ok(device)
}

/// Renders a device back into the description format (round-trips through
/// [`parse_device`]).
pub fn device_description(device: &Device) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name {}", device.name());
    let _ = writeln!(out, "qubits {}", device.n_qubits());
    let _ = writeln!(
        out,
        "native {}",
        match device.native() {
            TwoQubitNative::Cnot => "cnot",
            TwoQubitNative::Cz => "cz",
        }
    );
    for (c, t) in device.couplings() {
        match device.cnot_error(c, t) {
            Some(e) => {
                let _ = writeln!(out, "coupling {c} {t} {e}");
            }
            None => {
                let _ = writeln!(out, "coupling {c} {t}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a toy chip
name labchip
qubits 4
native cz
coupling 0 1
coupling 1 2 0.015
coupling 2 3
";

    #[test]
    fn parses_sample() {
        let d = parse_device(SAMPLE).unwrap();
        assert_eq!(d.name(), "labchip");
        assert_eq!(d.n_qubits(), 4);
        assert_eq!(d.native(), TwoQubitNative::Cz);
        assert_eq!(d.coupling_count(), 3);
        assert_eq!(d.cnot_error(1, 2), Some(0.015));
        assert_eq!(d.cnot_error(0, 1), None);
    }

    #[test]
    fn round_trip() {
        let d = parse_device(SAMPLE).unwrap();
        let text = device_description(&d);
        let again = parse_device(&text).unwrap();
        assert_eq!(d, again);
    }

    #[test]
    fn default_native_is_cnot() {
        let d = parse_device("name x\nqubits 2\ncoupling 0 1\n").unwrap();
        assert_eq!(d.native(), TwoQubitNative::Cnot);
    }

    #[test]
    fn library_devices_round_trip() {
        for d in crate::devices::all_devices() {
            let again = parse_device(&device_description(&d)).unwrap();
            assert_eq!(d, again, "{}", d.name());
        }
    }

    #[test]
    fn errors() {
        assert!(parse_device("qubits 2\ncoupling 0 1\n").is_err()); // no name
        assert!(parse_device("name x\ncoupling 0 1\n").is_err()); // coupling first
        assert!(parse_device("name x\nqubits 2\ncoupling 0 5\n").is_err()); // range
        assert!(parse_device("name x\nqubits 2\ncoupling 0 0\n").is_err()); // self
        assert!(parse_device("name x\nqubits 2\ncoupling 0 1 2.0\n").is_err()); // error prob
        assert!(parse_device("name x\nqubits 2\nnative frob\n").is_err()); // native
        assert!(parse_device("name x\nqubits 2\nwhatever\n").is_err()); // directive
        assert!(parse_device("name x\nqubits zero\n").is_err()); // count
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let d = parse_device("# hi\n\nname y\n qubits 2 # two\ncoupling 0 1\n").unwrap();
        assert_eq!(d.n_qubits(), 2);
    }
}
