//! Quantum device architecture model: qubit count plus a directed CNOT
//! coupling map (paper Section 3).

use std::collections::BTreeSet;
use std::fmt;

/// The native two-qubit entangling gate of a technology library.
///
/// IBM's transmon machines expose a (directed) CNOT; several other
/// superconducting platforms expose a CZ instead, which is symmetric in
/// its operands so orientation reversal never arises. The back-end emits
/// whichever primitive the target library declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TwoQubitNative {
    /// Directed controlled-NOT (the IBM transmon library of the paper).
    #[default]
    Cnot,
    /// Controlled-Z (symmetric; CNOTs are realized as `H t; CZ; H t`).
    Cz,
}

/// A target quantum computer architecture.
///
/// A device is characterized by its qubit count and its *coupling map*: the
/// set of ordered pairs `(control, target)` on which a native two-qubit
/// gate may be placed. On the IBM transmon machines the CNOT is the only
/// two-qubit gate and each coupling is unidirectional, so a CNOT against
/// the arrow must be reversed with Hadamards (paper Fig. 6) and a CNOT
/// between uncoupled qubits must be rerouted with SWAPs (paper Fig. 4/5).
///
/// # Examples
///
/// ```
/// use qsyn_arch::Device;
/// let dev = Device::from_coupling_map("toy", 3, &[(0, &[1]), (1, &[2])]);
/// assert!(dev.has_coupling(0, 1));
/// assert!(!dev.has_coupling(1, 0));
/// assert!(dev.are_adjacent(1, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    n_qubits: usize,
    couplings: BTreeSet<(usize, usize)>,
    neighbors: Vec<Vec<usize>>, // undirected adjacency, sorted
    cnot_errors: std::collections::BTreeMap<(usize, usize), f64>,
    native: TwoQubitNative,
}

impl Device {
    /// Creates a device from a coupling map in the paper's dictionary form:
    /// each entry pairs a control qubit with the list of targets it may
    /// drive.
    ///
    /// # Panics
    ///
    /// Panics if a coupling references a qubit `>= n_qubits` or couples a
    /// qubit with itself.
    pub fn from_coupling_map(
        name: impl Into<String>,
        n_qubits: usize,
        map: &[(usize, &[usize])],
    ) -> Self {
        let mut couplings = BTreeSet::new();
        for (control, targets) in map {
            for target in *targets {
                assert!(*control < n_qubits && *target < n_qubits, "coupling out of range");
                assert_ne!(control, target, "self-coupling");
                couplings.insert((*control, *target));
            }
        }
        Self::from_pairs(name, n_qubits, couplings)
    }

    /// Creates a device from explicit directed pairs.
    ///
    /// # Panics
    ///
    /// Panics if a pair references a qubit `>= n_qubits` or couples a qubit
    /// with itself.
    pub fn from_pairs(
        name: impl Into<String>,
        n_qubits: usize,
        pairs: impl IntoIterator<Item = (usize, usize)>,
    ) -> Self {
        let couplings: BTreeSet<(usize, usize)> = pairs.into_iter().collect();
        let mut neighbors = vec![BTreeSet::new(); n_qubits];
        for &(c, t) in &couplings {
            assert!(c < n_qubits && t < n_qubits, "coupling out of range");
            assert_ne!(c, t, "self-coupling");
            neighbors[c].insert(t);
            neighbors[t].insert(c);
        }
        Device {
            name: name.into(),
            n_qubits,
            couplings,
            neighbors: neighbors
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            cnot_errors: std::collections::BTreeMap::new(),
            native: TwoQubitNative::Cnot,
        }
    }

    /// Declares the native two-qubit gate of this device's technology
    /// library (builder form; the default is [`TwoQubitNative::Cnot`]).
    pub fn with_native(mut self, native: TwoQubitNative) -> Self {
        self.native = native;
        self
    }

    /// The native two-qubit gate of this device's technology library.
    pub fn native(&self) -> TwoQubitNative {
        self.native
    }

    /// Whether a gate is directly executable on this device: any library
    /// one-qubit gate, plus the native two-qubit gate on a coupled pair
    /// (in either orientation for the symmetric CZ).
    pub fn supports(&self, gate: &qsyn_gate::Gate) -> bool {
        match gate {
            qsyn_gate::Gate::Single { .. } => true,
            qsyn_gate::Gate::Cx { control, target } => {
                self.native == TwoQubitNative::Cnot && self.has_coupling(*control, *target)
            }
            qsyn_gate::Gate::Cz { control, target } => {
                self.native == TwoQubitNative::Cz && self.are_adjacent(*control, *target)
            }
            _ => false,
        }
    }

    /// Annotates a native coupling with its CNOT error probability
    /// (device characterization data; used by fidelity-aware routing and
    /// the fidelity cost model).
    ///
    /// # Panics
    ///
    /// Panics if the coupling does not exist or the probability is not in
    /// `[0, 1)`.
    pub fn set_cnot_error(&mut self, control: usize, target: usize, error: f64) {
        assert!(
            self.has_coupling(control, target),
            "no coupling {control} -> {target}"
        );
        assert!((0.0..1.0).contains(&error), "error probability out of range");
        self.cnot_errors.insert((control, target), error);
    }

    /// Builder form of [`Device::set_cnot_error`] for many couplings.
    ///
    /// # Panics
    ///
    /// See [`Device::set_cnot_error`].
    pub fn with_cnot_errors(
        mut self,
        errors: impl IntoIterator<Item = ((usize, usize), f64)>,
    ) -> Self {
        for ((c, t), e) in errors {
            self.set_cnot_error(c, t, e);
        }
        self
    }

    /// The characterized CNOT error probability of a native coupling, or
    /// `None` when the coupling exists but has no annotation.
    ///
    /// # Panics
    ///
    /// Panics if the coupling does not exist.
    pub fn cnot_error(&self, control: usize, target: usize) -> Option<f64> {
        assert!(
            self.has_coupling(control, target),
            "no coupling {control} -> {target}"
        );
        self.cnot_errors.get(&(control, target)).copied()
    }

    /// Whether any coupling carries characterization data.
    pub fn has_error_data(&self) -> bool {
        !self.cnot_errors.is_empty()
    }

    /// Stable 128-bit fingerprint of everything that can influence a
    /// compilation: name, width, the directed coupling set, per-coupling
    /// error annotations (exact IEEE-754 bits) and the native two-qubit
    /// gate. Devices are stored in `BTree` containers, so iteration — and
    /// hence the digest — is deterministic.
    ///
    /// The name *is* included: compiled circuits are tagged
    /// `circuit@device`, so two structurally identical devices with
    /// different names must not share cache entries (their outputs differ
    /// byte-for-byte in the name tag).
    pub fn fingerprint(&self) -> u128 {
        let mut h = qsyn_circuit::Fnv128::new();
        h.write_str(&self.name);
        h.write_usize(self.n_qubits);
        h.write_usize(self.couplings.len());
        for &(c, t) in &self.couplings {
            h.write_usize(c);
            h.write_usize(t);
        }
        h.write_usize(self.cnot_errors.len());
        for (&(c, t), &e) in &self.cnot_errors {
            h.write_usize(c);
            h.write_usize(t);
            h.write_f64(e);
        }
        h.write_u8(match self.native {
            TwoQubitNative::Cnot => 0,
            TwoQubitNative::Cz => 1,
        });
        h.finish()
    }

    /// A fully connected device (the paper's simulator target): every
    /// ordered pair is a legal CNOT placement and the coupling complexity
    /// is exactly one.
    pub fn simulator(n_qubits: usize) -> Self {
        let pairs = (0..n_qubits)
            .flat_map(|c| (0..n_qubits).filter(move |&t| t != c).map(move |t| (c, t)));
        Device::from_pairs("simulator", n_qubits, pairs)
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Directed couplings `(control, target)` in sorted order.
    pub fn couplings(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.couplings.iter().copied()
    }

    /// Number of directed couplings.
    pub fn coupling_count(&self) -> usize {
        self.couplings.len()
    }

    /// Whether a native CNOT with this control and target exists.
    pub fn has_coupling(&self, control: usize, target: usize) -> bool {
        self.couplings.contains(&(control, target))
    }

    /// Whether two qubits are coupled in either direction (a CNOT can be
    /// realized natively or with the Fig. 6 reversal).
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.has_coupling(a, b) || self.has_coupling(b, a)
    }

    /// Undirected neighbors of a qubit, sorted ascending. Determines the
    /// deterministic exploration order of the CTR reroute search.
    pub fn neighbors(&self, qubit: usize) -> &[usize] {
        &self.neighbors[qubit]
    }

    /// The paper's *coupling complexity* metric (Section 3): the ratio of
    /// allowable CNOT couplings to the total number of ordered two-qubit
    /// permutations `n * (n - 1)`. One for a simulator, near zero for large
    /// sparse machines.
    pub fn coupling_complexity(&self) -> f64 {
        if self.n_qubits < 2 {
            return 0.0;
        }
        self.couplings.len() as f64 / (self.n_qubits * (self.n_qubits - 1)) as f64
    }

    /// Whether every gate of a circuit is directly executable on this
    /// device (library-supported gates on legal couplings).
    pub fn can_execute(&self, circuit: &qsyn_circuit::Circuit) -> bool {
        circuit.n_qubits() <= self.n_qubits && circuit.gates().iter().all(|g| self.supports(g))
    }

    /// Renders the directed coupling map as Graphviz DOT (the form the
    /// paper draws in Fig. 7 for its proposed 96-qubit machine).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  node [shape=circle];");
        for q in 0..self.n_qubits {
            let _ = writeln!(out, "  q{q};");
        }
        for (c, t) in &self.couplings {
            let _ = writeln!(out, "  q{c} -> q{t};");
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// BFS hop distances from `start` over the undirected coupling graph;
    /// unreachable qubits get `u32::MAX / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= n_qubits`.
    pub fn distances_from(&self, start: usize) -> Vec<u32> {
        assert!(start < self.n_qubits, "qubit out of range");
        let mut dist = vec![u32::MAX / 2; self.n_qubits];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(q) = queue.pop_front() {
            for &nb in self.neighbors(q) {
                if dist[nb] > dist[q] + 1 {
                    dist[nb] = dist[q] + 1;
                    queue.push_back(nb);
                }
            }
        }
        dist
    }

    /// Multi-source BFS hop distances (minimum over the seed set).
    ///
    /// # Panics
    ///
    /// Panics if any seed is out of range.
    pub fn distances_from_set(&self, seeds: &[usize]) -> Vec<u32> {
        let mut dist = vec![u32::MAX / 2; self.n_qubits];
        let mut queue = std::collections::VecDeque::new();
        for &s in seeds {
            assert!(s < self.n_qubits, "qubit out of range");
            dist[s] = 0;
            queue.push_back(s);
        }
        while let Some(q) = queue.pop_front() {
            for &nb in self.neighbors(q) {
                if dist[nb] > dist[q] + 1 {
                    dist[nb] = dist[q] + 1;
                    queue.push_back(nb);
                }
            }
        }
        dist
    }

    /// Undirected hop distance between two qubits (`None` if disconnected).
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range.
    pub fn distance(&self, a: usize, b: usize) -> Option<u32> {
        let d = self.distances_from(a)[b];
        (d < u32::MAX / 2).then_some(d)
    }

    /// Graph diameter: the largest pairwise hop distance (`None` for a
    /// disconnected map). A proxy for worst-case routing cost.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0u32;
        for q in 0..self.n_qubits {
            let row = self.distances_from(q);
            for &d in &row {
                if d >= u32::MAX / 2 {
                    return None;
                }
                best = best.max(d);
            }
        }
        Some(best)
    }

    /// Whether the undirected coupling graph is connected (required for the
    /// CTR reroute to succeed between arbitrary qubit pairs).
    pub fn is_connected(&self) -> bool {
        if self.n_qubits == 0 {
            return true;
        }
        let mut seen = vec![false; self.n_qubits];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(q) = stack.pop() {
            for &nb in self.neighbors(q) {
                if !seen[nb] {
                    seen[nb] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == self.n_qubits
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} couplings, complexity {:.4})",
            self.name,
            self.n_qubits,
            self.couplings.len(),
            self.coupling_complexity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Device {
        Device::from_coupling_map("toy", 4, &[(0, &[1, 2]), (3, &[2])])
    }

    #[test]
    fn coupling_queries() {
        let d = toy();
        assert!(d.has_coupling(0, 1));
        assert!(!d.has_coupling(1, 0));
        assert!(d.are_adjacent(1, 0));
        assert!(!d.are_adjacent(0, 3));
        assert_eq!(d.coupling_count(), 3);
    }

    #[test]
    fn neighbors_are_sorted_and_undirected() {
        let d = toy();
        assert_eq!(d.neighbors(2), &[0, 3]);
        assert_eq!(d.neighbors(0), &[1, 2]);
        assert_eq!(d.neighbors(1), &[0]);
    }

    #[test]
    fn paper_example_coupling_complexity() {
        // Section 3: ibmqx2 has 6 couplings among 5 qubits -> 6/20 = 0.3.
        let d = Device::from_coupling_map(
            "ibmqx2",
            5,
            &[(0, &[1, 2]), (1, &[2]), (3, &[2, 4]), (4, &[2])],
        );
        assert!((d.coupling_complexity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn simulator_has_complexity_one() {
        let d = Device::simulator(5);
        assert!((d.coupling_complexity() - 1.0).abs() < 1e-12);
        assert!(d.has_coupling(3, 1) && d.has_coupling(1, 3));
    }

    #[test]
    fn connectivity() {
        assert!(toy().is_connected());
        let disconnected = Device::from_coupling_map("d", 4, &[(0, &[1])]);
        assert!(!disconnected.is_connected());
        assert!(Device::simulator(1).is_connected());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = Device::from_coupling_map("bad", 2, &[(0, &[5])]);
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn rejects_self_coupling() {
        let _ = Device::from_coupling_map("bad", 2, &[(0, &[0])]);
    }

    #[test]
    fn distances_and_diameter() {
        let d = toy(); // 0->1, 0->2, 3->2: path graph 1-0-2-3
        assert_eq!(d.distance(1, 3), Some(3));
        assert_eq!(d.distance(0, 0), Some(0));
        assert_eq!(d.distance(0, 3), Some(2));
        assert_eq!(d.diameter(), Some(3));
        let row = d.distances_from(1);
        assert_eq!(row, vec![1, 0, 2, 3]);
        let multi = d.distances_from_set(&[1, 3]);
        assert_eq!(multi, vec![1, 0, 1, 0]);
        let disc = Device::from_coupling_map("d", 3, &[(0, &[1])]);
        assert_eq!(disc.distance(0, 2), None);
        assert_eq!(disc.diameter(), None);
    }

    #[test]
    fn native_gate_and_support_queries() {
        use qsyn_gate::Gate;
        let cnot_dev = toy();
        assert_eq!(cnot_dev.native(), TwoQubitNative::Cnot);
        assert!(cnot_dev.supports(&Gate::h(0)));
        assert!(cnot_dev.supports(&Gate::cx(0, 1)));
        assert!(!cnot_dev.supports(&Gate::cx(1, 0))); // wrong orientation
        assert!(!cnot_dev.supports(&Gate::cz(0, 1))); // wrong library
        assert!(!cnot_dev.supports(&Gate::toffoli(0, 1, 2)));

        let cz_dev = toy().with_native(TwoQubitNative::Cz);
        assert!(cz_dev.supports(&Gate::cz(0, 1)));
        assert!(cz_dev.supports(&Gate::cz(1, 0))); // CZ is symmetric
        assert!(!cz_dev.supports(&Gate::cz(0, 3))); // not adjacent
        assert!(!cz_dev.supports(&Gate::cx(0, 1)));
    }

    #[test]
    fn can_execute_whole_circuits() {
        use qsyn_circuit::Circuit;
        use qsyn_gate::Gate;
        let d = toy();
        let mut legal = Circuit::new(4);
        legal.push(Gate::h(3));
        legal.push(Gate::cx(0, 2));
        assert!(d.can_execute(&legal));
        let mut illegal = Circuit::new(4);
        illegal.push(Gate::cx(2, 0));
        assert!(!d.can_execute(&illegal));
        assert!(!d.can_execute(&Circuit::new(9))); // too wide
    }

    #[test]
    fn cnot_error_annotations() {
        let mut d = toy();
        assert!(!d.has_error_data());
        assert_eq!(d.cnot_error(0, 1), None);
        d.set_cnot_error(0, 1, 0.02);
        assert_eq!(d.cnot_error(0, 1), Some(0.02));
        assert!(d.has_error_data());
        let d2 = toy().with_cnot_errors([((0, 1), 0.01), ((3, 2), 0.05)]);
        assert_eq!(d2.cnot_error(3, 2), Some(0.05));
    }

    #[test]
    #[should_panic(expected = "no coupling")]
    fn cnot_error_requires_existing_coupling() {
        let mut d = toy();
        d.set_cnot_error(1, 0, 0.02); // only 0 -> 1 exists
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cnot_error_probability_bounds() {
        let mut d = toy();
        d.set_cnot_error(0, 1, 1.5);
    }

    #[test]
    fn dot_export_lists_every_coupling() {
        let d = toy();
        let dot = d.to_dot();
        assert!(dot.starts_with("digraph \"toy\" {"));
        assert!(dot.contains("q0 -> q1;"));
        assert!(dot.contains("q0 -> q2;"));
        assert!(dot.contains("q3 -> q2;"));
        assert!(!dot.contains("q1 -> q0;"), "direction preserved");
        assert_eq!(dot.matches("->").count(), d.coupling_count());
    }

    #[test]
    fn display_mentions_complexity() {
        let text = toy().to_string();
        assert!(text.contains("toy"));
        assert!(text.contains("complexity"));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let base = toy();
        assert_eq!(base.fingerprint(), toy().fingerprint(), "deterministic");

        // A renamed device is a *different* device (outputs carry the name).
        let renamed = Device::from_pairs("toy2", 4, base.couplings());
        assert_ne!(base.fingerprint(), renamed.fingerprint());

        // Reversing one coupling direction changes the digest.
        let mut flipped: Vec<(usize, usize)> = base.couplings().collect();
        let (c, t) = flipped[0];
        flipped[0] = (t, c);
        let flipped = Device::from_pairs("toy", 4, flipped);
        assert_ne!(base.fingerprint(), flipped.fingerprint());

        // Error annotations and the native gate both matter.
        let mut annotated = base.clone();
        annotated.set_cnot_error(0, 1, 0.02);
        assert_ne!(base.fingerprint(), annotated.fingerprint());
        let mut reannotated = base.clone();
        reannotated.set_cnot_error(0, 1, 0.03);
        assert_ne!(annotated.fingerprint(), reannotated.fingerprint());
        let cz = base.clone().with_native(TwoQubitNative::Cz);
        assert_ne!(base.fingerprint(), cz.fingerprint());
    }
}
