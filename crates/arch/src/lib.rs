//! Target architecture models for technology-dependent quantum synthesis.
//!
//! Provides the [`Device`] coupling-map abstraction (paper Section 3), the
//! built-in library of IBM Q machines plus the 96-qubit experimental layout
//! of Fig. 7 ([`devices`]), the coupling-complexity metric of Table 2, and
//! pluggable quantum [`CostModel`]s with the paper's Eqn. 2 as the default
//! ([`TransmonCost`]).
//!
//! # Examples
//!
//! ```
//! use qsyn_arch::devices;
//!
//! // Table 2: ibmqx2 has coupling complexity 0.3.
//! let d = devices::ibmqx2();
//! assert!((d.coupling_complexity() - 0.3).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod cost;
mod description;
mod device;
pub mod devices;

pub use cost::{CostModel, FidelityCost, RouteHint, TransmonCost, VolumeCost};
pub use description::{device_description, parse_device};
pub use device::{Device, TwoQubitNative};
