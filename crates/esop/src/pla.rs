//! Berkeley PLA front-end for multi-output classical specifications
//! (the "various file formats" entry point of the paper's Fig. 2).
//!
//! Supported subset:
//!
//! ```text
//! .i 3          # inputs
//! .o 2          # outputs
//! .p 4          # cube count (optional, informational)
//! .type fd      # 'fd' (OR cover, the espresso default) or 'esop'
//! 110 10        # input literals: 1 positive, 0 negative, - absent
//! 1-0 01        # output plane: 1 participates, 0/- does not
//! .e
//! ```
//!
//! `fd` planes are OR-covers and are converted to truth tables before
//! ESOP extraction; `esop` planes XOR their cubes directly.

use crate::cube::Cube;
use crate::esop::Esop;
use crate::truth_table::TruthTable;
use qsyn_circuit::Circuit;

/// A parsed PLA specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pla {
    n_inputs: usize,
    n_outputs: usize,
    xor_semantics: bool,
    rows: Vec<(Cube, Vec<bool>)>,
}

impl Pla {
    /// Number of input variables.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Whether the plane uses XOR (`.type esop`) instead of OR semantics.
    pub fn is_esop(&self) -> bool {
        self.xor_semantics
    }

    /// The truth table of output `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_outputs`.
    pub fn output_table(&self, k: usize) -> TruthTable {
        assert!(k < self.n_outputs, "output index out of range");
        TruthTable::from_fn(self.n_inputs, |row| {
            let assignment = crate::esop::row_to_assignment(row, self.n_inputs);
            let mut acc = false;
            for (cube, outs) in &self.rows {
                if outs[k] && cube.eval(assignment) {
                    if self.xor_semantics {
                        acc = !acc;
                    } else {
                        return true;
                    }
                }
            }
            acc
        })
    }

    /// A minimized ESOP for output `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_outputs`.
    pub fn output_esop(&self, k: usize) -> Esop {
        Esop::minimized(&self.output_table(k))
    }

    /// Synthesizes the whole PLA as a reversible multi-output cascade:
    /// inputs on lines `0 .. n_inputs`, output `k` XOR-accumulated on line
    /// `n_inputs + k`.
    pub fn synthesize(&self) -> Circuit {
        let tables: Vec<TruthTable> = (0..self.n_outputs).map(|k| self.output_table(k)).collect();
        crate::cascade::synthesize_multi_output(&tables).with_name("pla")
    }
}

/// Parses PLA source.
///
/// # Errors
///
/// Returns a message naming the first offending line for malformed
/// headers, inconsistent row widths, or unknown characters.
pub fn parse_pla(src: &str) -> Result<Pla, String> {
    let mut n_inputs: Option<usize> = None;
    let mut n_outputs: Option<usize> = None;
    let mut xor_semantics = false;
    let mut rows = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut toks = rest.split_whitespace();
            match toks.next() {
                Some("i") => {
                    n_inputs = Some(
                        toks.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&v: &usize| (1..=20).contains(&v))
                            .ok_or(format!("line {lineno}: bad .i (1..=20 supported)"))?,
                    )
                }
                Some("o") => {
                    n_outputs = Some(
                        toks.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&v: &usize| v >= 1)
                            .ok_or(format!("line {lineno}: bad .o"))?,
                    )
                }
                Some("type") => match toks.next() {
                    Some("esop") => xor_semantics = true,
                    Some("fd") | Some("f") => xor_semantics = false,
                    other => return Err(format!("line {lineno}: unsupported .type {other:?}")),
                },
                Some("p") | Some("ilb") | Some("ob") => {}
                Some("e") | Some("end") => break,
                other => return Err(format!("line {lineno}: unknown directive .{other:?}")),
            }
            continue;
        }
        // Cube row.
        let ni = n_inputs.ok_or(format!("line {lineno}: cube before .i"))?;
        let no = n_outputs.ok_or(format!("line {lineno}: cube before .o"))?;
        let mut parts = line.split_whitespace();
        let (inp, outp) = match (parts.next(), parts.next()) {
            (Some(i), Some(o)) => (i, o),
            _ => return Err(format!("line {lineno}: expected `<inputs> <outputs>`")),
        };
        if inp.len() != ni || outp.len() != no {
            return Err(format!(
                "line {lineno}: row width mismatch (want {ni}+{no} columns)"
            ));
        }
        let mut care = 0u32;
        let mut polarity = 0u32;
        for (v, ch) in inp.chars().enumerate() {
            match ch {
                '1' => {
                    care |= 1 << v;
                    polarity |= 1 << v;
                }
                '0' => care |= 1 << v,
                '-' | '2' => {}
                other => return Err(format!("line {lineno}: bad input literal `{other}`")),
            }
        }
        let outs: Vec<bool> = outp
            .chars()
            .map(|ch| match ch {
                '1' | '4' => Ok(true),
                '0' | '-' | '~' | '2' => Ok(false),
                other => Err(format!("line {lineno}: bad output literal `{other}`")),
            })
            .collect::<Result<_, _>>()?;
        rows.push((Cube::new(care, polarity), outs));
    }

    Ok(Pla {
        n_inputs: n_inputs.ok_or("missing .i")?,
        n_outputs: n_outputs.ok_or("missing .o")?,
        xor_semantics,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const XOR_AND: &str = "\
.i 2
.o 2
.p 2
10 01
01 01
11 10
.e
";

    #[test]
    fn parses_header_and_rows() {
        let pla = parse_pla(XOR_AND).unwrap();
        assert_eq!(pla.n_inputs(), 2);
        assert_eq!(pla.n_outputs(), 2);
        assert!(!pla.is_esop());
    }

    #[test]
    fn or_semantics_cover() {
        let pla = parse_pla(XOR_AND).unwrap();
        // Output 1 covers rows x0!x1 and !x0x1: the XOR function under OR
        // semantics (the cubes are disjoint).
        let xor = pla.output_table(1);
        assert!(xor.eval(0b01) && xor.eval(0b10));
        assert!(!xor.eval(0b00) && !xor.eval(0b11));
        // Output 0: AND.
        let and = pla.output_table(0);
        assert!(and.eval(0b11));
        assert_eq!(and.popcount(), 1);
    }

    #[test]
    fn esop_semantics_xor_cubes() {
        // Overlapping cubes: `1-` XOR `-1` = x0 XOR x1.
        let src = ".i 2\n.o 1\n.type esop\n1- 1\n-1 1\n.e\n";
        let pla = parse_pla(src).unwrap();
        assert!(pla.is_esop());
        let t = pla.output_table(0);
        assert!(t.eval(0b01) && t.eval(0b10));
        assert!(!t.eval(0b00) && !t.eval(0b11));
        // Under OR semantics the same plane is x0 OR x1.
        let or_src = ".i 2\n.o 1\n1- 1\n-1 1\n.e\n";
        let or_pla = parse_pla(or_src).unwrap();
        assert!(or_pla.output_table(0).eval(0b11));
    }

    #[test]
    fn dont_care_inputs() {
        let src = ".i 3\n.o 1\n1-0 1\n.e\n";
        let pla = parse_pla(src).unwrap();
        let t = pla.output_table(0);
        // x0=1, x2=0, x1 free.
        assert!(t.eval(0b100) && t.eval(0b110));
        assert!(!t.eval(0b101) && !t.eval(0b000));
    }

    #[test]
    fn synthesize_multi_output_pla() {
        let pla = parse_pla(XOR_AND).unwrap();
        let c = pla.synthesize();
        assert_eq!(c.n_qubits(), 4);
        for x in 0..4u64 {
            let out = c.permute_basis(x << 2);
            let and = pla.output_table(0).eval(x) as u64;
            let xor = pla.output_table(1).eval(x) as u64;
            assert_eq!(out, x << 2 | and << 1 | xor);
        }
    }

    #[test]
    fn output_esop_is_minimized_and_correct() {
        let pla = parse_pla(XOR_AND).unwrap();
        let e = pla.output_esop(1);
        assert_eq!(e.cube_count(), 2);
        assert_eq!(e.truth_table(), pla.output_table(1));
    }

    #[test]
    fn errors() {
        assert!(parse_pla("10 1\n").is_err()); // cube before headers
        assert!(parse_pla(".i 2\n.o 1\n1 1\n").is_err()); // width
        assert!(parse_pla(".i 2\n.o 1\nxy 1\n").is_err()); // bad literal
        assert!(parse_pla(".i 2\n.o 1\n.type foo\n").is_err()); // bad type
        assert!(parse_pla(".i 99\n.o 1\n").is_err()); // too wide
        assert!(parse_pla(".o 1\n").is_err()); // missing .i
    }

    #[test]
    fn comments_and_e_marker() {
        let src = "# header\n.i 1\n.o 1\n1 1 # cube\n.e\nGARBAGE AFTER END\n";
        let pla = parse_pla(src).unwrap();
        assert!(pla.output_table(0).eval(1));
    }
}
