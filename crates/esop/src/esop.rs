//! Exclusive-OR sum-of-products extraction and minimization.
//!
//! The front-end of the paper converts a classical switching function into
//! a reversible Toffoli cascade through a minimized ESOP cube list
//! (Fazel–Thornton). This module extracts ESOPs via Reed-Muller spectra —
//! positive-polarity (PPRM) and fixed-polarity (FPRM) with polarity search —
//! and then applies local exorlink-style cube merging.

use crate::cube::Cube;
use crate::truth_table::TruthTable;
use std::fmt;

/// An exclusive-OR sum of product cubes over `n_vars` variables.
///
/// # Examples
///
/// ```
/// use qsyn_esop::{Esop, TruthTable};
/// let f = TruthTable::from_hex(2, "6").unwrap(); // XOR
/// let esop = Esop::minimized(&f);
/// assert_eq!(esop.cube_count(), 2);
/// assert_eq!(esop.truth_table(), f);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Esop {
    n_vars: usize,
    cubes: Vec<Cube>,
}

impl Esop {
    /// Creates an ESOP from explicit cubes.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > 32` or a cube references a variable
    /// `>= n_vars`.
    pub fn from_cubes(n_vars: usize, cubes: Vec<Cube>) -> Self {
        assert!(n_vars <= 32, "at most 32 variables");
        let mask = mask_of(n_vars);
        for c in &cubes {
            assert_eq!(c.care & !mask, 0, "cube variable out of range");
        }
        Esop { n_vars, cubes }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The cube list.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes (one generalized Toffoli gate each after mapping).
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count (controls of the eventual Toffoli cascade).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(|c| c.literal_count()).sum()
    }

    /// Evaluates the ESOP on an assignment in cube bit order
    /// (bit `v` = variable `v`).
    pub fn eval(&self, assignment: u32) -> bool {
        self.cubes
            .iter()
            .fold(false, |acc, c| acc ^ c.eval(assignment))
    }

    /// Reconstructs the truth table (row index uses variable 0 as the most
    /// significant bit, as everywhere in the workspace).
    pub fn truth_table(&self) -> TruthTable {
        let n = self.n_vars;
        TruthTable::from_fn(n, |row| self.eval(row_to_assignment(row, n)))
    }

    /// Positive-polarity Reed-Muller ESOP: one cube per non-zero PPRM
    /// spectrum coefficient; every literal positive.
    pub fn pprm(tt: &TruthTable) -> Self {
        Self::fprm(tt, 0)
    }

    /// Fixed-polarity Reed-Muller ESOP. Bit `v` of `polarity` set means
    /// variable `v` appears as a *negative* literal throughout.
    pub fn fprm(tt: &TruthTable, polarity: u32) -> Self {
        let n = tt.n_vars();
        let flip_rows = assignment_to_row(polarity & mask_of(n), n);
        // g(y) = f(y XOR flip); PPRM of g yields monomials in the chosen
        // literals.
        let g = TruthTable::from_fn(n, |y| tt.eval(y ^ flip_rows));
        let spectrum = g.pprm_spectrum();
        let mut cubes = Vec::new();
        for m in 0..spectrum.len() as u64 {
            if spectrum.eval(m) {
                let care = row_to_assignment(m, n);
                cubes.push(Cube::new(care, care & !polarity));
            }
        }
        Esop { n_vars: n, cubes }
    }

    /// The best fixed-polarity ESOP: exhaustive over all `2^n` polarities
    /// for small `n`, greedy bit-flip hill climbing beyond that. Quality is
    /// judged by cube count, then literal count.
    pub fn best_fprm(tt: &TruthTable) -> Self {
        let n = tt.n_vars();
        let score = |e: &Esop| (e.cube_count(), e.literal_count());
        if n <= 10 {
            let mut best = Esop::fprm(tt, 0);
            for p in 1..(1u32 << n) {
                let cand = Esop::fprm(tt, p);
                if score(&cand) < score(&best) {
                    best = cand;
                }
            }
            best
        } else {
            let mut pol = 0u32;
            let mut best = Esop::fprm(tt, pol);
            let mut improved = true;
            while improved {
                improved = false;
                for v in 0..n {
                    let cand = Esop::fprm(tt, pol ^ (1 << v));
                    if score(&cand) < score(&best) {
                        pol ^= 1 << v;
                        best = cand;
                        improved = true;
                    }
                }
            }
            best
        }
    }

    /// Full extraction pipeline: best FPRM, exorlink merging, then
    /// distance-2 exorlink reshaping with hill climbing. This is the form
    /// handed to the Toffoli-cascade generator.
    pub fn minimized(tt: &TruthTable) -> Self {
        let mut e = Self::best_fprm(tt);
        e.merge_cubes();
        e.reshape_cubes();
        e
    }

    /// Hill-climbing over distance-2 exorlink rewrites: a cube pair
    /// differing in exactly two variable positions admits two alternative
    /// exact pair representations (`a_i a_j (+) b_i b_j =
    /// (a_i(+)b_i) a_j (+) b_i (a_j(+)b_j)` over GF(2) characteristic
    /// functions); trying each alternative can unlock further distance-0/1
    /// merges. Accepts a rewrite only when the (cube count, literal count)
    /// score strictly improves, so termination is guaranteed.
    pub fn reshape_cubes(&mut self) {
        let score = |e: &Esop| (e.cube_count(), e.literal_count());
        loop {
            let mut improved = false;
            let current = score(self);
            'search: for i in 0..self.cubes.len() {
                for j in (i + 1)..self.cubes.len() {
                    let Some(alternatives) = exorlink2(self.cubes[i], self.cubes[j]) else {
                        continue;
                    };
                    for (a, b) in alternatives {
                        let mut cand = self.clone();
                        cand.cubes[i] = a;
                        cand.cubes[j] = b;
                        cand.merge_cubes();
                        if score(&cand) < current {
                            *self = cand;
                            improved = true;
                            break 'search;
                        }
                    }
                }
            }
            if !improved {
                return;
            }
        }
    }

    /// Applies local ESOP identities until fixpoint:
    ///
    /// * `C (+) C = 0` — duplicate cubes cancel;
    /// * `l·C (+) !l·C = C` — opposite literals merge away;
    /// * `l·C (+) C = !l·C` — a sub-cube absorbs into a flipped literal.
    pub fn merge_cubes(&mut self) {
        loop {
            if !self.merge_pass() {
                break;
            }
        }
    }

    fn merge_pass(&mut self) -> bool {
        let cubes = &mut self.cubes;
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                let (a, b) = (cubes[i], cubes[j]);
                if a == b {
                    // XOR cancellation.
                    cubes.swap_remove(j);
                    cubes.swap_remove(i);
                    return true;
                }
                if a.care == b.care {
                    let diff = a.polarity ^ b.polarity;
                    if diff.count_ones() == 1 {
                        // l·C (+) !l·C = C.
                        cubes[i] = Cube::new(a.care & !diff, a.polarity & !diff);
                        cubes.swap_remove(j);
                        return true;
                    }
                } else {
                    // One extra variable in one cube, rest identical:
                    // l·C (+) C = !l·C.
                    let (big, small, bi, si) = if a.care & b.care == b.care {
                        (a, b, i, j)
                    } else if a.care & b.care == a.care {
                        (b, a, j, i)
                    } else {
                        continue;
                    };
                    let extra = big.care ^ small.care;
                    if extra.count_ones() == 1
                        && big.polarity & small.care == small.polarity
                    {
                        cubes[bi] = Cube::new(big.care, big.polarity ^ extra);
                        cubes.swap_remove(si);
                        return true;
                    }
                }
            }
        }
        false
    }
}

impl fmt::Display for Esop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return f.write_str("0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                f.write_str(" (+) ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Per-variable literal state of a cube: `{0}`, `{1}`, or `{0,1}`
/// (absent), encoded as the characteristic pair `(in0, in1)`.
fn var_state(c: Cube, v: usize) -> (bool, bool) {
    if c.care >> v & 1 == 0 {
        (true, true)
    } else if c.polarity >> v & 1 == 1 {
        (false, true)
    } else {
        (true, false)
    }
}

fn with_state(c: Cube, v: usize, state: (bool, bool)) -> Option<Cube> {
    let (in0, in1) = state;
    let bit = 1u32 << v;
    match (in0, in1) {
        (true, true) => Some(Cube::new(c.care & !bit, c.polarity & !bit)),
        (false, true) => Some(Cube::new(c.care | bit, c.polarity | bit)),
        (true, false) => Some(Cube::new(c.care | bit, c.polarity & !bit)),
        (false, false) => None, // empty literal: the cube vanishes
    }
}

/// GF(2) combination of two distinct literal states (their characteristic
/// XOR); `None` when identical (the term vanishes).
fn state_xor(a: (bool, bool), b: (bool, bool)) -> Option<(bool, bool)> {
    if a == b {
        None
    } else {
        Some((a.0 ^ b.0, a.1 ^ b.1))
    }
}

/// The two alternative pair representations of a distance-2 cube pair, or
/// `None` if the pair is not at distance exactly 2.
fn exorlink2(a: Cube, b: Cube) -> Option<[(Cube, Cube); 2]> {
    let n = 32usize;
    let mut diff = Vec::with_capacity(3);
    for v in 0..n {
        if var_state(a, v) != var_state(b, v) {
            diff.push(v);
            if diff.len() > 2 {
                return None;
            }
        }
    }
    let [i, j] = diff.as_slice() else { return None };
    let (i, j) = (*i, *j);
    let xi = state_xor(var_state(a, i), var_state(b, i)).expect("differs at i");
    let xj = state_xor(var_state(a, j), var_state(b, j)).expect("differs at j");
    // alt1: (a_i (+) b_i) a_j  |  b_i (a_j (+) b_j)
    let alt1 = (
        with_state(a, i, xi).expect("xor of distinct states is nonempty"),
        with_state(b, j, xj).expect("xor of distinct states is nonempty"),
    );
    // alt2: a_i (a_j (+) b_j)  |  (a_i (+) b_i) b_j
    let alt2 = (
        with_state(a, j, xj).expect("nonempty"),
        with_state(b, i, xi).expect("nonempty"),
    );
    Some([alt1, alt2])
}

/// Variable mask for `n` variables.
fn mask_of(n: usize) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Converts a truth-table row index (variable 0 = msb) into a cube
/// assignment (bit `v` = variable `v`).
pub fn row_to_assignment(row: u64, n_vars: usize) -> u32 {
    let mut a = 0u32;
    for v in 0..n_vars {
        if row >> (n_vars - 1 - v) & 1 == 1 {
            a |= 1 << v;
        }
    }
    a
}

/// Inverse of [`row_to_assignment`].
pub fn assignment_to_row(assignment: u32, n_vars: usize) -> u64 {
    let mut r = 0u64;
    for v in 0..n_vars {
        if assignment >> v & 1 == 1 {
            r |= 1 << (n_vars - 1 - v);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_covers(tt: &TruthTable, e: &Esop) {
        assert_eq!(&e.truth_table(), tt, "ESOP does not realize the function");
    }

    #[test]
    fn row_assignment_round_trip() {
        for n in 1..=6 {
            for row in 0..(1u64 << n) {
                assert_eq!(assignment_to_row(row_to_assignment(row, n), n), row);
            }
        }
    }

    #[test]
    fn pprm_covers_all_three_var_functions() {
        for code in 0..256u64 {
            let tt = TruthTable::from_fn(3, |i| code >> i & 1 == 1);
            check_covers(&tt, &Esop::pprm(&tt));
        }
    }

    #[test]
    fn fprm_covers_for_every_polarity() {
        let tt = TruthTable::from_hex(3, "6a").unwrap();
        for p in 0..8u32 {
            check_covers(&tt, &Esop::fprm(&tt, p));
        }
    }

    #[test]
    fn best_fprm_never_worse_than_pprm() {
        for hex in ["01", "17", "6a", "f3", "99", "b4"] {
            let tt = TruthTable::from_hex(3, hex).unwrap();
            let p = Esop::pprm(&tt);
            let b = Esop::best_fprm(&tt);
            assert!(b.cube_count() <= p.cube_count(), "{hex}");
            check_covers(&tt, &b);
        }
    }

    #[test]
    fn minimized_covers_all_three_var_functions() {
        for code in 0..256u64 {
            let tt = TruthTable::from_fn(3, |i| code >> i & 1 == 1);
            let e = Esop::minimized(&tt);
            check_covers(&tt, &e);
        }
    }

    #[test]
    fn constant_functions() {
        let zero = TruthTable::zeros(3);
        assert_eq!(Esop::minimized(&zero).cube_count(), 0);
        let one = TruthTable::from_fn(3, |_| true);
        let e = Esop::minimized(&one);
        assert_eq!(e.cube_count(), 1);
        assert_eq!(e.cubes()[0], Cube::TAUTOLOGY);
    }

    #[test]
    fn nand_gets_two_cubes_via_polarity() {
        // NAND(x0, x1) = 1 (+) x0 x1. PPRM needs 2 cubes; negative polarity
        // gives !x0 (+) !x0? Either way, minimized must cover with <= 2.
        let tt = TruthTable::from_hex(2, "7").unwrap();
        let e = Esop::minimized(&tt);
        assert!(e.cube_count() <= 2);
        check_covers(&tt, &e);
    }

    #[test]
    fn merge_duplicate_cubes_cancel() {
        let c = Cube::new(0b11, 0b01);
        let mut e = Esop::from_cubes(2, vec![c, c]);
        e.merge_cubes();
        assert_eq!(e.cube_count(), 0);
    }

    #[test]
    fn merge_opposite_literals() {
        // x0·x1 (+) x0·!x1 = x0.
        let mut e = Esop::from_cubes(2, vec![Cube::new(0b11, 0b11), Cube::new(0b11, 0b01)]);
        let before = e.truth_table();
        e.merge_cubes();
        assert_eq!(e.cube_count(), 1);
        assert_eq!(e.cubes()[0], Cube::new(0b01, 0b01));
        assert_eq!(e.truth_table(), before);
    }

    #[test]
    fn merge_subcube_absorption() {
        // x0·x1 (+) x1 = !x0·x1.
        let mut e = Esop::from_cubes(2, vec![Cube::new(0b11, 0b11), Cube::new(0b10, 0b10)]);
        let before = e.truth_table();
        e.merge_cubes();
        assert_eq!(e.cube_count(), 1);
        assert_eq!(e.cubes()[0], Cube::new(0b11, 0b10));
        assert_eq!(e.truth_table(), before);
    }

    #[test]
    fn merge_preserves_function_on_random_esops() {
        // Deterministic pseudo-random cube lists.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let n = 4usize;
            let cubes: Vec<Cube> = (0..(next() % 8 + 1))
                .map(|_| {
                    let care = (next() as u32) & 0b1111;
                    let pol = (next() as u32) & 0b1111;
                    Cube::new(care, pol)
                })
                .collect();
            let mut e = Esop::from_cubes(n, cubes);
            let before = e.truth_table();
            e.merge_cubes();
            assert_eq!(e.truth_table(), before);
        }
    }

    #[test]
    fn display_formats() {
        let e = Esop::from_cubes(2, vec![Cube::new(0b11, 0b01)]);
        assert_eq!(e.to_string(), "x0·!x1");
        assert_eq!(Esop::from_cubes(2, vec![]).to_string(), "0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_wide_cube() {
        let _ = Esop::from_cubes(2, vec![Cube::new(0b100, 0)]);
    }
}
