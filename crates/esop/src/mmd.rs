//! Transformation-based synthesis of reversible permutations
//! (Miller–Maslov–Dueck), complementing the ESOP cascade front-end.
//!
//! Where the ESOP path embeds an *irreversible* function with a fresh
//! target line, this path synthesizes a circuit for a function that is
//! already a bijection on basis states — e.g. an in-place arithmetic unit
//! or a hand-specified reversible truth table — without ancilla lines.
//!
//! The algorithm walks the truth table in ascending order, fixing one row
//! at a time with generalized Toffoli gates whose control sets guarantee
//! already-fixed rows are never disturbed (row `x` maps to `f(x) >= x`
//! once all smaller rows are identity, so controls drawn from the set bits
//! of `f(x)` or of `x` only touch rows `>= x`).

use crate::truth_table::TruthTable;
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;

/// A permutation of the `2^n` basis states of an `n`-line register.
///
/// Entry `map[x]` is the output basis state for input `x`, with variable 0
/// as the most significant bit (the workspace-wide convention).
///
/// # Examples
///
/// ```
/// use qsyn_esop::{synthesize_permutation, Permutation};
///
/// // A 2-line swap as a permutation: |01> <-> |10>.
/// let p = Permutation::new(2, vec![0, 2, 1, 3]).unwrap();
/// let c = synthesize_permutation(&p);
/// assert_eq!(c.permute_basis(0b01), 0b10);
/// assert_eq!(c.permute_basis(0b10), 0b01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    n_vars: usize,
    map: Vec<u64>,
}

impl Permutation {
    /// Creates a permutation from an explicit output table.
    ///
    /// # Errors
    ///
    /// Returns a message if the table length is not `2^n_vars` or the map
    /// is not bijective.
    pub fn new(n_vars: usize, map: Vec<u64>) -> Result<Self, String> {
        let size = 1usize << n_vars;
        if map.len() != size {
            return Err(format!("expected {size} entries, got {}", map.len()));
        }
        let mut seen = vec![false; size];
        for &y in &map {
            let y = y as usize;
            if y >= size {
                return Err(format!("entry {y} out of range"));
            }
            if seen[y] {
                return Err(format!("entry {y} repeated; not a bijection"));
            }
            seen[y] = true;
        }
        Ok(Permutation { n_vars, map })
    }

    /// The identity permutation.
    pub fn identity(n_vars: usize) -> Self {
        Permutation {
            n_vars,
            map: (0..1u64 << n_vars).collect(),
        }
    }

    /// Builds a permutation from a bijective function on basis indices.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a bijection on `0..2^n_vars`.
    pub fn from_fn(n_vars: usize, f: impl Fn(u64) -> u64) -> Self {
        let map: Vec<u64> = (0..1u64 << n_vars).map(f).collect();
        Permutation::new(n_vars, map).expect("function must be a bijection")
    }

    /// The permutation realized by a classical reversible circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-classical gates.
    pub fn of_circuit(circuit: &Circuit) -> Self {
        let n = circuit.n_qubits();
        Permutation::from_fn(n, |x| circuit.permute_basis(x))
    }

    /// Number of lines.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The output for a basis input.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn apply(&self, x: u64) -> u64 {
        self.map[x as usize]
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(x, &y)| x as u64 == y)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut map = vec![0u64; self.map.len()];
        for (x, &y) in self.map.iter().enumerate() {
            map[y as usize] = x as u64;
        }
        Permutation {
            n_vars: self.n_vars,
            map,
        }
    }

    /// Truth table of output bit `line` (useful for inspecting outputs).
    pub fn output_bit(&self, line: usize) -> TruthTable {
        let shift = self.n_vars - 1 - line;
        TruthTable::from_fn(self.n_vars, |x| self.map[x as usize] >> shift & 1 == 1)
    }
}

/// Synthesizes a technology-independent MCT cascade realizing the
/// permutation, using the transformation-based (MMD) method. The result
/// uses exactly `n_vars` lines — no ancilla.
pub fn synthesize_permutation(perm: &Permutation) -> Circuit {
    let n = perm.n_vars();
    let size = 1u64 << n;
    // Work on a mutable copy of the map; `gates` accumulates the
    // output-side fix-up network g with g(f(x)) = x.
    let mut f: Vec<u64> = perm.map.clone();
    let mut gates: Vec<Gate> = Vec::new();

    // Applies an MCT (given as control mask + target bit) to every output
    // value of the table.
    let apply = |f: &mut Vec<u64>, gates: &mut Vec<Gate>, cmask: u64, tbit: u64| {
        for y in f.iter_mut() {
            if *y & cmask == cmask {
                *y ^= tbit;
            }
        }
        let controls: Vec<usize> = (0..n).filter(|q| cmask >> (n - 1 - q) & 1 == 1).collect();
        let target = (0..n).find(|q| tbit >> (n - 1 - q) & 1 == 1).expect("target bit");
        gates.push(Gate::mct(controls, target));
    };

    for x in 0..size {
        let y = f[x as usize];
        if y == x {
            continue;
        }
        debug_assert!(y > x, "smaller rows are already fixed");
        // Step (a): set the bits of x missing from y. Controls: the bits
        // of the current value, which is >= x, so no smaller row fires.
        let mut current = y;
        let mut missing = x & !current;
        while missing != 0 {
            let bit = missing & missing.wrapping_neg();
            apply(&mut f, &mut gates, current, bit);
            current |= bit;
            missing &= !bit;
        }
        // Step (b): clear the extra bits. Controls: the bits of x, so only
        // rows >= x fire.
        let mut extra = current & !x;
        while extra != 0 {
            let bit = extra & extra.wrapping_neg();
            apply(&mut f, &mut gates, x, bit);
            extra &= !bit;
        }
        debug_assert_eq!(f[x as usize], x);
    }

    // gates realize g with g(f(x)) = x, so f = g^{-1}: reverse the
    // self-inverse gate list.
    gates.reverse();
    Circuit::from_gates(n, gates).with_name("mmd")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(perm: &Permutation) {
        let c = synthesize_permutation(perm);
        assert!(c.is_classical());
        assert_eq!(c.n_qubits(), perm.n_vars());
        for x in 0..1u64 << perm.n_vars() {
            assert_eq!(c.permute_basis(x), perm.apply(x), "at {x}");
        }
    }

    #[test]
    fn identity_synthesizes_to_empty() {
        let p = Permutation::identity(3);
        assert!(p.is_identity());
        assert!(synthesize_permutation(&p).is_empty());
    }

    #[test]
    fn single_transposition() {
        // Swap |000> and |111>.
        let p = Permutation::from_fn(3, |x| match x {
            0 => 7,
            7 => 0,
            other => other,
        });
        check(&p);
    }

    #[test]
    fn cyclic_increment() {
        // x -> x + 1 mod 8: the classic reversible counter.
        let p = Permutation::from_fn(3, |x| (x + 1) % 8);
        check(&p);
    }

    #[test]
    fn all_two_line_permutations() {
        // Every permutation of 4 elements (24 of them).
        let mut items = [0u64, 1, 2, 3];
        permute_all(&mut items, 0, &mut |perm| {
            let p = Permutation::new(2, perm.to_vec()).unwrap();
            check(&p);
        });
    }

    fn permute_all(items: &mut [u64], k: usize, f: &mut impl FnMut(&[u64])) {
        if k == items.len() {
            f(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute_all(items, k + 1, f);
            items.swap(k, i);
        }
    }

    #[test]
    fn random_permutations_synthesize() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            // Fisher-Yates over 16 elements.
            let mut map: Vec<u64> = (0..16).collect();
            for i in (1..16usize).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                map.swap(i, j);
            }
            check(&Permutation::new(4, map).unwrap());
        }
    }

    #[test]
    fn of_circuit_round_trip() {
        let mut c = Circuit::new(3);
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::cx(2, 0));
        c.push(Gate::x(1));
        let p = Permutation::of_circuit(&c);
        let resynth = synthesize_permutation(&p);
        for x in 0..8u64 {
            assert_eq!(resynth.permute_basis(x), c.permute_basis(x));
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_fn(3, |x| (x * 3 + 5) % 8); // bijective mod 8
        let inv = p.inverse();
        for x in 0..8u64 {
            assert_eq!(inv.apply(p.apply(x)), x);
        }
    }

    #[test]
    fn output_bit_tables() {
        let p = Permutation::from_fn(2, |x| x ^ 0b01);
        // Line 1 (lsb) is complemented, line 0 passes through.
        let b0 = p.output_bit(0);
        let b1 = p.output_bit(1);
        assert!(b0.eval(0b10) && !b0.eval(0b01));
        assert!(b1.eval(0b00) && !b1.eval(0b01));
    }

    #[test]
    fn validation_errors() {
        assert!(Permutation::new(2, vec![0, 1, 2]).is_err()); // wrong length
        assert!(Permutation::new(2, vec![0, 1, 2, 2]).is_err()); // repeat
        assert!(Permutation::new(2, vec![0, 1, 2, 9]).is_err()); // range
    }

    #[test]
    fn mmd_gate_counts_are_reasonable() {
        // The 3-line increment has a well-known 3-gate MCT realization;
        // MMD should find something comparable, not exponential.
        let p = Permutation::from_fn(3, |x| (x + 1) % 8);
        let c = synthesize_permutation(&p);
        assert!(c.len() <= 4, "got {} gates", c.len());
    }
}
