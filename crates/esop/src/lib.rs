//! ESOP-based reversible logic front-end (paper Section 2.3).
//!
//! Converts classical switching functions into technology-independent
//! reversible cascades of NOT / CNOT / Toffoli / generalized Toffoli gates,
//! following the ESOP cascade generation approach of Fazel–Thornton:
//!
//! 1. a [`TruthTable`] describes the function;
//! 2. [`Esop::minimized`] extracts a fixed-polarity Reed-Muller ESOP and
//!    shrinks it with local exorlink-style merges;
//! 3. [`cascade_from_esop`] (or [`synthesize_single_target`]) turns each
//!    cube into one generalized Toffoli gate.
//!
//! # Examples
//!
//! ```
//! use qsyn_esop::{synthesize_single_target, TruthTable};
//!
//! // A 3-input majority as a single-target gate on 4 lines.
//! let maj = TruthTable::from_fn(3, |x| (x.count_ones()) >= 2);
//! let circuit = synthesize_single_target(&maj);
//! assert!(circuit.is_classical());
//! assert_eq!(circuit.n_qubits(), 4);
//! ```

#![warn(missing_docs)]

mod cascade;
mod cube;
mod esop;
mod mmd;
mod pla;
mod truth_table;

pub use cascade::{cascade_from_esop, cascade_size_estimate, synthesize_multi_output, synthesize_single_target};
pub use cube::Cube;
pub use esop::{assignment_to_row, row_to_assignment, Esop};
pub use mmd::{synthesize_permutation, Permutation};
pub use pla::{parse_pla, Pla};
pub use truth_table::TruthTable;
