//! Product-term cubes of an exclusive-OR sum of products.

use std::fmt;

/// A product term over at most 32 variables.
///
/// A variable participates in the cube when its bit is set in `care`; its
/// literal is positive when the corresponding bit in `polarity` is set and
/// negative otherwise. Variable `v` maps to bit `v` (so bit 0 is variable 0,
/// the top circuit line).
///
/// # Examples
///
/// ```
/// use qsyn_esop::Cube;
/// // x0 AND (NOT x2)
/// let c = Cube::new(0b101, 0b001);
/// assert!(c.eval(0b001)); // x0=1, x2=0  (bit v = variable v)
/// assert!(!c.eval(0b101));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    /// Bit set of participating variables.
    pub care: u32,
    /// Polarity bits for participating variables (1 = positive literal).
    pub polarity: u32,
}

impl Cube {
    /// Creates a cube, masking polarity down to the care set.
    pub fn new(care: u32, polarity: u32) -> Self {
        Cube {
            care,
            polarity: polarity & care,
        }
    }

    /// The empty product (constant one).
    pub const TAUTOLOGY: Cube = Cube {
        care: 0,
        polarity: 0,
    };

    /// Number of literals.
    pub fn literal_count(self) -> usize {
        self.care.count_ones() as usize
    }

    /// Evaluates the product on an assignment given as a bit set
    /// (bit `v` = value of variable `v`).
    pub fn eval(self, assignment: u32) -> bool {
        assignment & self.care == self.polarity
    }

    /// Participating variables, ascending.
    pub fn variables(self) -> impl Iterator<Item = usize> {
        let care = self.care;
        (0..32usize).filter(move |v| care >> v & 1 == 1)
    }

    /// Variables with a positive literal, ascending.
    pub fn positive_variables(self) -> impl Iterator<Item = usize> {
        let bits = self.care & self.polarity;
        (0..32usize).filter(move |v| bits >> v & 1 == 1)
    }

    /// Variables with a negative literal, ascending.
    pub fn negative_variables(self) -> impl Iterator<Item = usize> {
        let bits = self.care & !self.polarity;
        (0..32usize).filter(move |v| bits >> v & 1 == 1)
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.care == 0 {
            return f.write_str("1");
        }
        let mut first = true;
        for v in self.variables() {
            if !first {
                f.write_str("·")?;
            }
            first = false;
            if self.polarity >> v & 1 == 1 {
                write!(f, "x{v}")?;
            } else {
                write!(f, "!x{v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_checks_polarity() {
        let c = Cube::new(0b011, 0b001); // x0 AND !x1
        assert!(c.eval(0b001));
        assert!(c.eval(0b101)); // x2 irrelevant
        assert!(!c.eval(0b011));
        assert!(!c.eval(0b000));
    }

    #[test]
    fn tautology_accepts_everything() {
        for a in 0..8 {
            assert!(Cube::TAUTOLOGY.eval(a));
        }
        assert_eq!(Cube::TAUTOLOGY.literal_count(), 0);
    }

    #[test]
    fn polarity_masked_to_care() {
        let c = Cube::new(0b01, 0b11);
        assert_eq!(c.polarity, 0b01);
    }

    #[test]
    fn variable_iterators() {
        let c = Cube::new(0b1011, 0b0001);
        assert_eq!(c.variables().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(c.positive_variables().collect::<Vec<_>>(), vec![0]);
        assert_eq!(c.negative_variables().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn display() {
        assert_eq!(Cube::TAUTOLOGY.to_string(), "1");
        assert_eq!(Cube::new(0b101, 0b001).to_string(), "x0·!x2");
    }
}
