//! ESOP to Toffoli-cascade generation (the Fazel–Thornton front-end).
//!
//! Every ESOP cube becomes one (generalized) Toffoli whose controls are the
//! cube's literals and whose target is the output line; negative literals
//! are realized by conjugating the corresponding control line with NOT
//! gates. Consecutive cubes share their NOT wrappers: the generator tracks
//! the current line-inversion state and only toggles the difference, which
//! is the main practical optimization of the original algorithm.

use crate::esop::Esop;
use crate::truth_table::TruthTable;
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;

/// Converts an ESOP into a reversible cascade computing
/// `target ^= f(lines)`, where ESOP variable `v` lives on circuit line `v`
/// and the output is XOR-accumulated on `target_line`.
///
/// The resulting circuit is technology-independent: it contains NOT, CNOT,
/// Toffoli and generalized Toffoli gates only.
///
/// # Panics
///
/// Panics if `target_line` collides with a variable line or exceeds
/// `n_lines`, or if `n_lines` cannot hold every variable.
pub fn cascade_from_esop(esop: &Esop, target_line: usize, n_lines: usize) -> Circuit {
    assert!(target_line < n_lines, "target line out of range");
    assert!(
        esop.n_vars() <= n_lines,
        "not enough lines for the ESOP variables"
    );
    assert!(
        target_line >= esop.n_vars(),
        "target line collides with a variable line"
    );
    let order = toggle_minimizing_order(esop);
    let mut c = Circuit::new(n_lines);
    // Bit v set = line v currently holds the negation of variable v.
    let mut flipped: u32 = 0;
    for &k in &order {
        let cube = esop.cubes()[k];
        let want: u32 = cube.negative_variables().fold(0, |m, v| m | 1 << v);
        toggle_lines(&mut c, flipped ^ want);
        flipped = want;
        let controls: Vec<usize> = cube.variables().collect();
        c.push(Gate::mct(controls, target_line));
    }
    toggle_lines(&mut c, flipped);
    c
}

/// Orders cubes to minimize NOT-wrapper toggling between consecutive
/// cubes: XOR terms commute, so any order computes the same function, and
/// a greedy nearest-neighbor walk over the negative-literal masks (Hamming
/// distance, including distance from/back to the all-positive state) cuts
/// the X-gate overhead of the cascade.
fn toggle_minimizing_order(esop: &Esop) -> Vec<usize> {
    let masks: Vec<u32> = esop
        .cubes()
        .iter()
        .map(|c| c.negative_variables().fold(0u32, |m, v| m | 1 << v))
        .collect();
    let n = masks.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut current = 0u32; // lines start un-flipped
    for _ in 0..n {
        let next = (0..n)
            .filter(|&k| !used[k])
            .min_by_key(|&k| ((masks[k] ^ current).count_ones(), k))
            .expect("one unused cube remains");
        used[next] = true;
        current = masks[next];
        order.push(next);
    }
    order
}

fn toggle_lines(c: &mut Circuit, mask: u32) {
    for v in 0..32usize {
        if mask >> v & 1 == 1 {
            c.push(Gate::x(v));
        }
    }
}

/// Predicted size of the cascade [`cascade_from_esop`] will emit:
/// `(mct_gates, not_gates)`. The MCT count is exactly the cube count; the
/// NOT count follows the toggle-minimizing order's wrapper arithmetic, so
/// the prediction is exact (tested against the generator).
pub fn cascade_size_estimate(esop: &Esop) -> (usize, usize) {
    let masks: Vec<u32> = esop
        .cubes()
        .iter()
        .map(|c| c.negative_variables().fold(0u32, |m, v| m | 1 << v))
        .collect();
    // Re-run the generator's greedy order over masks only.
    let n = masks.len();
    let mut used = vec![false; n];
    let mut current = 0u32;
    let mut nots = 0usize;
    for _ in 0..n {
        let next = (0..n)
            .filter(|&k| !used[k])
            .min_by_key(|&k| ((masks[k] ^ current).count_ones(), k))
            .expect("one cube left");
        used[next] = true;
        nots += (masks[next] ^ current).count_ones() as usize;
        current = masks[next];
    }
    nots += current.count_ones() as usize; // final unwrap
    (n, nots)
}

/// Synthesizes the *single-target gate* of a control function `f`:
/// the `(n+1)`-qubit reversible gate `|x, y> -> |x, y ^ f(x)>`
/// (the benchmark family of the paper's Table 3).
///
/// The control function is minimized to an ESOP first, so the result is a
/// compact technology-independent cascade on `f.n_vars() + 1` lines with
/// the target on the last line.
pub fn synthesize_single_target(f: &TruthTable) -> Circuit {
    let esop = Esop::minimized(f);
    let n = f.n_vars();
    cascade_from_esop(&esop, n, n + 1).with_name(format!("stg_{f}"))
}

/// Synthesizes a multi-output function: output `k` is XOR-accumulated on
/// line `n_vars + k`. All outputs share the input lines (ancilla-free
/// Bennett-style embedding with the inputs preserved).
///
/// # Panics
///
/// Panics if the outputs disagree on variable count or there are none.
pub fn synthesize_multi_output(outputs: &[TruthTable]) -> Circuit {
    assert!(!outputs.is_empty(), "at least one output required");
    let n = outputs[0].n_vars();
    assert!(
        outputs.iter().all(|o| o.n_vars() == n),
        "outputs must share the input variables"
    );
    let n_lines = n + outputs.len();
    let mut c = Circuit::new(n_lines);
    for (k, f) in outputs.iter().enumerate() {
        let esop = Esop::minimized(f);
        c.append(&cascade_from_esop(&esop, n + k, n_lines));
    }
    c.with_name("multi_output")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks the cascade against the defining relation
    /// `|x, y> -> |x, y ^ f(x)>` for every basis input.
    fn check_single_target(f: &TruthTable, c: &Circuit) {
        let n = f.n_vars();
        assert_eq!(c.n_qubits(), n + 1);
        for x in 0..(1u64 << n) {
            for y in 0..2u64 {
                let input = x << 1 | y;
                let out = c.permute_basis(input);
                let expect = x << 1 | (y ^ f.eval(x) as u64);
                assert_eq!(out, expect, "f at x={x}, y={y}");
            }
        }
    }

    #[test]
    fn and_function_is_one_toffoli() {
        let f = TruthTable::from_hex(2, "8").unwrap();
        let c = synthesize_single_target(&f);
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0], Gate::toffoli(0, 1, 2));
        check_single_target(&f, &c);
    }

    #[test]
    fn xor_function_is_two_cnots() {
        let f = TruthTable::from_hex(2, "6").unwrap();
        let c = synthesize_single_target(&f);
        assert_eq!(c.len(), 2);
        check_single_target(&f, &c);
    }

    #[test]
    fn all_two_var_functions_synthesize_correctly() {
        for code in 0..16u64 {
            let f = TruthTable::from_fn(2, |i| code >> i & 1 == 1);
            check_single_target(&f, &synthesize_single_target(&f));
        }
    }

    #[test]
    fn all_three_var_functions_synthesize_correctly() {
        for code in 0..256u64 {
            let f = TruthTable::from_fn(3, |i| code >> i & 1 == 1);
            check_single_target(&f, &synthesize_single_target(&f));
        }
    }

    #[test]
    fn paper_benchmark_functions_synthesize() {
        // The Table 3 ids actually used in the experiments.
        for (vars, hex) in [(2, "1"), (3, "0f"), (4, "033f"), (4, "0356"), (5, "0117f")] {
            let f = TruthTable::from_hex(vars, hex).unwrap();
            check_single_target(&f, &synthesize_single_target(&f));
        }
    }

    #[test]
    fn negative_literal_wrappers_share_nots() {
        // A function whose minimized ESOP uses negative literals in
        // consecutive cubes should not un-flip and re-flip between them.
        let f = TruthTable::from_hex(3, "01").unwrap(); // NOR-ish: f=1 only at x=0
        let c = synthesize_single_target(&f);
        check_single_target(&f, &c);
        // The naive form would pay 2 * literals NOT gates per cube; the
        // shared form pays at most 2 per line overall for this function.
        let x_count = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Single { .. }))
            .count();
        assert!(x_count <= 6, "NOT wrappers not shared: {x_count}");
    }

    #[test]
    fn constant_one_is_single_not() {
        let f = TruthTable::from_fn(2, |_| true);
        let c = synthesize_single_target(&f);
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0], Gate::x(2));
        check_single_target(&f, &c);
    }

    #[test]
    fn constant_zero_is_empty() {
        let f = TruthTable::zeros(2);
        let c = synthesize_single_target(&f);
        assert!(c.is_empty());
    }

    #[test]
    fn multi_output_synthesizes_each_output() {
        let f0 = TruthTable::from_hex(2, "8").unwrap(); // AND
        let f1 = TruthTable::from_hex(2, "6").unwrap(); // XOR
        let c = synthesize_multi_output(&[f0.clone(), f1.clone()]);
        assert_eq!(c.n_qubits(), 4);
        for x in 0..4u64 {
            let out = c.permute_basis(x << 2);
            let o0 = f0.eval(x) as u64;
            let o1 = f1.eval(x) as u64;
            assert_eq!(out, x << 2 | o0 << 1 | o1);
        }
    }

    #[test]
    fn size_estimate_matches_generator_exactly() {
        for hex in ["6", "8", "01", "7f", "9a"] {
            let tt = TruthTable::from_hex(3, hex).unwrap();
            let esop = Esop::minimized(&tt);
            let (mcts, nots) = cascade_size_estimate(&esop);
            let target = tt.n_vars();
            let c = cascade_from_esop(&esop, target, target + 1);
            // Every cube contributes exactly one gate touching the target;
            // NOT wrappers live on the variable lines.
            let on_target = c.gates().iter().filter(|g| g.touches(target)).count();
            let wrappers = c.len() - on_target;
            assert_eq!(on_target, mcts, "{hex} cube gates");
            assert_eq!(wrappers, nots, "{hex} NOT wrappers");
        }
    }

    #[test]
    fn cube_reordering_reduces_not_overhead() {
        // Three cubes whose naive order ping-pongs polarities:
        // all-negative, all-positive, all-negative.
        use crate::cube::Cube;
        let cubes = vec![
            Cube::new(0b11, 0b00), // !x0 !x1
            Cube::new(0b11, 0b11), // x0 x1
            Cube::new(0b11, 0b01), // x0 !x1
        ];
        let esop = Esop::from_cubes(2, cubes);
        let c = cascade_from_esop(&esop, 2, 3);
        let x_count = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Single { .. }))
            .count();
        // Naive order (as listed) costs 2 + 2 + 1 + 1 = 6 X gates; the
        // greedy order groups the negatives and pays 4.
        assert!(x_count <= 4, "got {x_count} X gates");
        // And still computes the right function.
        let expect = esop.truth_table();
        for row in 0..4u64 {
            let out = c.permute_basis(row << 1);
            assert_eq!(out & 1 == 1, expect.eval(row), "row {row}");
        }
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn target_on_variable_line_rejected() {
        let f = TruthTable::from_hex(2, "8").unwrap();
        let esop = Esop::minimized(&f);
        let _ = cascade_from_esop(&esop, 1, 3);
    }
}
