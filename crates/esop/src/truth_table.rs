//! Truth tables of classical switching functions.
//!
//! The front-end accepts completely specified single-output Boolean
//! functions; the "Optimal single-target gates" benchmark suite names its
//! functions by the hexadecimal value of exactly this table.

use std::fmt;

/// A completely specified Boolean function of `n` variables, stored as a
/// `2^n`-bit table. Bit `i` holds `f(i)`, where variable 0 is the
/// most-significant bit of the input index (matching the qubit-0-on-top
/// convention used throughout the workspace).
///
/// # Examples
///
/// ```
/// use qsyn_esop::TruthTable;
/// let and = TruthTable::from_hex(2, "8").unwrap(); // f = x0 AND x1
/// assert!(and.eval(0b11));
/// assert!(!and.eval(0b10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    n_vars: usize,
    bits: Vec<u64>,
}

impl TruthTable {
    /// Maximum supported variable count (bounded so tables stay in memory).
    pub const MAX_VARS: usize = 24;

    /// The constant-false function of `n_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > Self::MAX_VARS`.
    pub fn zeros(n_vars: usize) -> Self {
        assert!(n_vars <= Self::MAX_VARS, "too many variables");
        let words = Self::words_for(n_vars);
        TruthTable {
            n_vars,
            bits: vec![0; words],
        }
    }

    fn words_for(n_vars: usize) -> usize {
        if n_vars >= 6 {
            1 << (n_vars - 6)
        } else {
            1
        }
    }

    /// Number of input variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of rows (`2^n_vars`).
    pub fn len(&self) -> usize {
        1 << self.n_vars
    }

    /// Whether the function is constant false.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Builds a table from a big-endian hexadecimal string: the paper's
    /// benchmark ids (`#033f` on 4 control variables means the 16-bit table
    /// `0x033f`, where the least-significant hex bit is `f(0)`).
    ///
    /// # Errors
    ///
    /// Returns an error for non-hex characters or a value that does not fit
    /// in `2^n_vars` bits.
    pub fn from_hex(n_vars: usize, hex: &str) -> Result<Self, String> {
        let mut tt = TruthTable::zeros(n_vars);
        let mut bit = 0usize;
        for ch in hex.trim().trim_start_matches("0x").chars().rev() {
            let v = ch
                .to_digit(16)
                .ok_or_else(|| format!("invalid hex digit `{ch}`"))? as u64;
            for k in 0..4 {
                if v >> k & 1 == 1 {
                    let idx = bit + k;
                    if idx >= tt.len() {
                        return Err(format!(
                            "hex value needs {} rows but the table has only {}",
                            idx + 1,
                            tt.len()
                        ));
                    }
                    tt.set(idx as u64, true);
                }
            }
            bit += 4;
        }
        Ok(tt)
    }

    /// Builds a table from a predicate over input rows.
    pub fn from_fn(n_vars: usize, f: impl Fn(u64) -> bool) -> Self {
        let mut tt = TruthTable::zeros(n_vars);
        for i in 0..tt.len() as u64 {
            if f(i) {
                tt.set(i, true);
            }
        }
        tt
    }

    /// The value `f(input)`, reading variable 0 from the most significant
    /// input bit.
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^n_vars`.
    pub fn eval(&self, input: u64) -> bool {
        assert!((input as usize) < self.len(), "input out of range");
        self.bits[(input >> 6) as usize] >> (input & 63) & 1 == 1
    }

    /// Sets `f(input)`.
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^n_vars`.
    pub fn set(&mut self, input: u64, value: bool) {
        assert!((input as usize) < self.len(), "input out of range");
        let w = &mut self.bits[(input >> 6) as usize];
        if value {
            *w |= 1 << (input & 63);
        } else {
            *w &= !(1 << (input & 63));
        }
    }

    /// Number of satisfying rows.
    pub fn popcount(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// XORs another table into this one.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn xor_assign(&mut self, other: &TruthTable) {
        assert_eq!(self.n_vars, other.n_vars, "variable count mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a ^= *b;
        }
    }

    /// The positive-polarity Reed-Muller (PPRM) spectrum: the result's bit
    /// `m` is the coefficient of the monomial whose variable set is the
    /// ones of `m` (with variable 0 = most significant bit). Computed with
    /// the in-place GF(2) butterfly in `O(2^n * n)`.
    pub fn pprm_spectrum(&self) -> TruthTable {
        let mut s = self.clone();
        // Butterfly over input-index bit positions (0 = lsb = variable
        // n_vars-1). For each position, coef[x | bit] ^= coef[x].
        for v in 0..self.n_vars {
            let step = 1u64 << v;
            if v < 6 {
                // Within-word butterfly using shift masks.
                let mask = splat_mask(v);
                for w in s.bits.iter_mut() {
                    *w ^= (*w & mask) << step;
                }
            } else {
                let word_step = 1usize << (v - 6);
                let mut i = 0usize;
                while i < s.bits.len() {
                    for k in 0..word_step {
                        let low = s.bits[i + k];
                        s.bits[i + k + word_step] ^= low;
                    }
                    i += word_step * 2;
                }
            }
        }
        s
    }
}

/// A 64-bit mask selecting, for a butterfly at bit position `v < 6`, the
/// lanes whose `v`-th index bit is zero.
fn splat_mask(v: usize) -> u64 {
    match v {
        0 => 0x5555_5555_5555_5555,
        1 => 0x3333_3333_3333_3333,
        2 => 0x0f0f_0f0f_0f0f_0f0f,
        3 => 0x00ff_00ff_00ff_00ff,
        4 => 0x0000_ffff_0000_ffff,
        5 => 0x0000_0000_ffff_ffff,
        _ => unreachable!("within-word positions only"),
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tt{}v:", self.n_vars)?;
        // Big-endian hex, most significant row first.
        let mut nibble = 0u8;
        let mut out = String::new();
        for row in (0..self.len() as u64).rev() {
            nibble = nibble << 1 | self.eval(row) as u8;
            if row % 4 == 0 {
                out.push(char::from_digit(nibble as u32, 16).expect("nibble"));
                nibble = 0;
            }
        }
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_hex_and_eval() {
        // 2 vars, table 0x8 = row 3 only -> AND.
        let and = TruthTable::from_hex(2, "8").unwrap();
        assert!(and.eval(3));
        assert!(!and.eval(0) && !and.eval(1) && !and.eval(2));
        assert_eq!(and.popcount(), 1);
    }

    #[test]
    fn from_hex_multi_word() {
        // 7 vars = 128 rows = 2 words.
        let t = TruthTable::from_hex(7, "80000000000000000000000000000001").unwrap();
        assert!(t.eval(0));
        assert!(t.eval(127));
        assert_eq!(t.popcount(), 2);
    }

    #[test]
    fn from_hex_rejects_garbage_and_overflow() {
        assert!(TruthTable::from_hex(2, "zz").is_err());
        assert!(TruthTable::from_hex(2, "1ff").is_err());
    }

    #[test]
    fn set_and_eval_round_trip() {
        let mut t = TruthTable::zeros(6);
        t.set(63, true);
        t.set(0, true);
        assert!(t.eval(63) && t.eval(0));
        t.set(63, false);
        assert!(!t.eval(63));
    }

    #[test]
    fn xor_assign() {
        let a = TruthTable::from_hex(2, "9").unwrap();
        let mut b = TruthTable::from_hex(2, "3").unwrap();
        b.xor_assign(&a);
        assert_eq!(b, TruthTable::from_hex(2, "a").unwrap());
    }

    #[test]
    fn pprm_of_xor_function() {
        // f(x0, x1) = x0 XOR x1: table rows 1,2 -> 0x6.
        let f = TruthTable::from_hex(2, "6").unwrap();
        let s = f.pprm_spectrum();
        // Monomials: index bit pattern m (var0 = msb). Expect x0 and x1
        // coefficients set, no constant, no x0x1.
        assert!(!s.eval(0b00)); // constant
        assert!(s.eval(0b01)); // x1 (lsb index bit = variable 1)
        assert!(s.eval(0b10)); // x0
        assert!(!s.eval(0b11)); // x0 x1
    }

    #[test]
    fn pprm_of_and_function() {
        let f = TruthTable::from_hex(2, "8").unwrap();
        let s = f.pprm_spectrum();
        assert_eq!(s.popcount(), 1);
        assert!(s.eval(0b11)); // single monomial x0 x1
    }

    #[test]
    fn pprm_reconstructs_function() {
        // Verify the spectrum by re-evaluating the polynomial for every
        // function of 3 variables.
        for code in 0..256u64 {
            let f = TruthTable::from_fn(3, |i| code >> i & 1 == 1);
            let s = f.pprm_spectrum();
            for x in 0..8u64 {
                let mut acc = false;
                for m in 0..8u64 {
                    // Monomial m evaluates to 1 iff m's variables are all 1
                    // in x: m & x == m.
                    if s.eval(m) && m & x == m {
                        acc = !acc;
                    }
                }
                assert_eq!(acc, f.eval(x), "code {code} at {x}");
            }
        }
    }

    #[test]
    fn pprm_large_crosses_word_boundary() {
        let f = TruthTable::from_fn(8, |i| (i * 37 + 11) % 5 == 0);
        let s = f.pprm_spectrum();
        // Spot-check reconstruction on a few rows.
        for x in [0u64, 1, 100, 200, 255] {
            let mut acc = false;
            for m in 0..256u64 {
                if s.eval(m) && m & x == m {
                    acc = !acc;
                }
            }
            assert_eq!(acc, f.eval(x));
        }
    }

    #[test]
    fn display_round_trips_hex() {
        let f = TruthTable::from_hex(4, "033f").unwrap();
        assert_eq!(f.to_string(), "tt4v:033f");
    }
}
