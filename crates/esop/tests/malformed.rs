//! Malformed-input corpus for the `.pla` classical-specification parser:
//! truncations of a valid table and garbage must yield `Err`, never panic.

use qsyn_esop::parse_pla;
use std::panic::{catch_unwind, AssertUnwindSafe};

const PLA_SEED: &str = ".i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
011 01
111 11
.e
";

#[test]
fn pla_truncations_and_garbage_never_panic() {
    let mut corpus: Vec<String> = PLA_SEED
        .char_indices()
        .map(|(i, _)| PLA_SEED[..i].to_string())
        .collect();
    corpus.push(PLA_SEED.to_string());
    corpus.extend([
        String::new(),
        ".i 3\n.o 1\n1--1-1 1\n.e\n".into(),     // cube wider than .i
        ".i 2\n.o 1\n0 11\n.e\n".into(),          // outputs wider than .o
        ".i x\n.o 1\n.e\n".into(),                // non-numeric header
        "\u{0}\u{1}garbage".into(),
        "9".repeat(128),
    ]);
    for (k, input) in corpus.iter().enumerate() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = parse_pla(input);
        }));
        assert!(outcome.is_ok(), "pla parser panicked on case {k}: {input:?}");
    }
}
