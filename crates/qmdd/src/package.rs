//! The QMDD package: hash-consed nodes, cached arithmetic, and circuit
//! construction.
//!
//! A QMDD (Miller & Thornton 2006) represents a `2^n x 2^n` complex matrix
//! as a directed acyclic graph. Each non-terminal vertex stands for one
//! qubit variable and has four outgoing edges for the four quadrants
//! `U00, U01, U10, U11` of the matrix at that level (paper Fig. 1). With a
//! fixed variable order and normalized edge weights the representation is
//! canonical: two circuits have the same matrix if and only if their QMDD
//! root edges are identical, which is how the compiler performs formal
//! verification.
//!
//! This implementation uses the *quasi-reduced* form (every non-zero path
//! visits every variable) so that level bookkeeping stays trivial; zero
//! matrices are the sole early-terminating edges.

use crate::ctable::{WeightId, WeightTable, W_NEG_ONE, W_ONE, W_ZERO};
use crate::fxhash::{FxHashMap, FxHashSet};
use qsyn_circuit::Circuit;
use qsyn_gate::{C64, Gate, Matrix};
use std::hash::{Hash, Hasher};

/// Index of a node in the package arena. `0` is the terminal.
pub type NodeId = u32;

/// The terminal vertex id.
pub const TERMINAL: NodeId = 0;

/// A weighted edge into the diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Destination node.
    pub node: NodeId,
    /// Interned complex weight multiplying the whole sub-diagram.
    pub weight: WeightId,
}

impl Edge {
    /// The edge representing the zero matrix.
    pub const ZERO: Edge = Edge {
        node: TERMINAL,
        weight: W_ZERO,
    };

    /// The terminal edge with weight one (the scalar `1`).
    pub const ONE: Edge = Edge {
        node: TERMINAL,
        weight: W_ONE,
    };

    /// Whether this edge denotes the zero matrix.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight == W_ZERO
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    edges: [Edge; 4],
}

/// A bounded, direct-mapped, generation-stamped compute table.
///
/// Each key hashes to exactly one slot; inserting over a live entry of the
/// current generation *evicts* it (counted by the caller). Invalidation —
/// needed after a garbage collection relocates node ids — is a single
/// generation bump instead of an `O(capacity)` clear, so sweeps stay cheap
/// no matter how full the table is.
#[derive(Debug)]
struct ComputeTable<K> {
    slots: Vec<Option<(K, Edge, u32)>>,
    generation: u32,
}

impl<K: Hash + Eq + Copy> ComputeTable<K> {
    fn new(capacity: usize) -> Self {
        ComputeTable {
            slots: vec![None; capacity.next_power_of_two().max(16)],
            generation: 0,
        }
    }

    #[inline]
    fn slot(&self, key: &K) -> usize {
        let mut h = crate::fxhash::FxHasher::default();
        key.hash(&mut h);
        (h.finish() as usize) & (self.slots.len() - 1)
    }

    #[inline]
    fn get(&self, key: &K) -> Option<Edge> {
        let (k, v, generation) = self.slots[self.slot(key)]?;
        (generation == self.generation && k == *key).then_some(v)
    }

    /// Stores `key -> value`; returns `true` when a *different* live entry
    /// of the current generation was displaced.
    #[inline]
    fn insert(&mut self, key: K, value: Edge) -> bool {
        let i = self.slot(&key);
        let evicted =
            matches!(self.slots[i], Some((k, _, g)) if g == self.generation && k != key);
        self.slots[i] = Some((key, value, self.generation));
        evicted
    }

    /// Invalidates every entry in `O(1)` by advancing the generation.
    fn invalidate(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        // Once per 2^32 sweeps the stamp wraps and stale entries could
        // alias the new generation; clear for real on that boundary.
        if self.generation == 0 {
            self.slots.iter_mut().for_each(|s| *s = None);
        }
    }

    fn resize(&mut self, capacity: usize) {
        self.slots = vec![None; capacity.next_power_of_two().max(16)];
        self.generation = 0;
    }
}

/// Default slot counts of the bounded compute tables. `add`/`mul` carry the
/// recursive arithmetic and get the large tables; the adjoint memo is
/// touched once per distinct node and stays small.
const ADD_CACHE_SLOTS: usize = 1 << 15;
const MUL_CACHE_SLOTS: usize = 1 << 15;
const ADJ_CACHE_SLOTS: usize = 1 << 12;

/// A 2x2 complex matrix used when assembling gate diagrams.
pub type M2 = [[C64; 2]; 2];

const IDENT2: M2 = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
const PROJ1: M2 = [[C64::ZERO, C64::ZERO], [C64::ZERO, C64::ONE]];

/// The QMDD package for diagrams over a fixed number of qubit variables.
///
/// Variable `0` is the top-most qubit (most significant basis bit),
/// matching the `x0 -> x1 -> ...` order of the paper.
///
/// # Examples
///
/// ```
/// use qsyn_qmdd::Qmdd;
/// use qsyn_circuit::Circuit;
/// use qsyn_gate::Gate;
///
/// let mut a = Circuit::new(2);
/// a.push(Gate::swap(0, 1));
/// let mut b = Circuit::new(2);
/// b.push(Gate::cx(0, 1));
/// b.push(Gate::cx(1, 0));
/// b.push(Gate::cx(0, 1));
///
/// let mut pkg = Qmdd::new(2);
/// let ea = pkg.circuit(&a);
/// let eb = pkg.circuit(&b);
/// assert_eq!(ea, eb); // canonical: pointer equality is matrix equality
/// ```
#[derive(Debug)]
pub struct Qmdd {
    n: usize,
    nodes: Vec<Node>,
    unique: FxHashMap<(u32, [Edge; 4]), NodeId>,
    weights: WeightTable,
    add_cache: ComputeTable<(NodeId, NodeId, WeightId)>,
    mul_cache: ComputeTable<(NodeId, NodeId)>,
    adj_cache: ComputeTable<NodeId>,
    /// Externally registered roots that every collection must preserve.
    protected: Vec<Edge>,
    /// Scratch buffers reused across collections and gate constructions.
    spare_nodes: Vec<Node>,
    gc_map: FxHashMap<NodeId, NodeId>,
    gc_stack: Vec<NodeId>,
    ctrl_mask: Vec<bool>,
    peak_nodes: usize,
    gc_threshold: usize,
    /// Arena-size ceiling; crossing it latches [`Qmdd::budget_exceeded`].
    node_budget: Option<usize>,
    budget_exceeded: bool,
    ct_lookups: u64,
    ct_hits: u64,
    ct_evictions: u64,
    gc_runs: u64,
    nodes_reclaimed: u64,
}

/// Compute-table and garbage-collection counters of a [`Qmdd`] package.
///
/// Exposed so the compiler's trace layer can report how effectively the
/// memoization caches are absorbing recursive arithmetic during
/// verification, and how much dead graph the collector reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cache probes performed by `add` and `mul`.
    pub lookups: u64,
    /// Probes answered from the cache.
    pub hits: u64,
    /// Live compute-table entries displaced by newer results (the tables
    /// are bounded and direct-mapped, so collisions overwrite).
    pub evictions: u64,
    /// Completed mark-and-sweep collections.
    pub gc_runs: u64,
    /// Total nodes reclaimed across all collections.
    pub nodes_reclaimed: u64,
}

impl CacheStats {
    /// Fraction of probes answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

impl Qmdd {
    /// Creates a package for diagrams over `n` qubits.
    pub fn new(n: usize) -> Self {
        Qmdd {
            n,
            nodes: vec![Node {
                var: u32::MAX,
                edges: [Edge::ZERO; 4],
            }],
            unique: FxHashMap::default(),
            weights: WeightTable::new(),
            add_cache: ComputeTable::new(ADD_CACHE_SLOTS),
            mul_cache: ComputeTable::new(MUL_CACHE_SLOTS),
            adj_cache: ComputeTable::new(ADJ_CACHE_SLOTS),
            protected: Vec::new(),
            spare_nodes: Vec::new(),
            gc_map: FxHashMap::default(),
            gc_stack: Vec::new(),
            ctrl_mask: Vec::new(),
            peak_nodes: 1,
            ct_lookups: 0,
            ct_hits: 0,
            ct_evictions: 0,
            gc_runs: 0,
            nodes_reclaimed: 0,
            gc_threshold: 1 << 22,
            node_budget: None,
            budget_exceeded: false,
        }
    }

    /// Number of qubit variables.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Current number of allocated nodes (including the terminal).
    pub fn node_count_total(&self) -> usize {
        self.nodes.len()
    }

    /// Largest arena size observed so far.
    pub fn peak_node_count(&self) -> usize {
        self.peak_nodes
    }

    /// Current number of entries in the unique (hash-cons) table.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Compute-table and collector counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.ct_lookups,
            hits: self.ct_hits,
            evictions: self.ct_evictions,
            gc_runs: self.gc_runs,
            nodes_reclaimed: self.nodes_reclaimed,
        }
    }

    /// Number of distinct interned complex weights.
    pub fn weight_count(&self) -> usize {
        self.weights.len()
    }

    /// Registers an external root that [`Qmdd::maybe_gc`] and
    /// [`Qmdd::compact`] must keep alive, returning a slot for
    /// [`Qmdd::protected`]. Use this when several diagrams are built in one
    /// package and an earlier root must survive collections triggered while
    /// constructing a later one.
    pub fn protect(&mut self, e: Edge) -> usize {
        self.protected.push(e);
        self.protected.len() - 1
    }

    /// The (possibly relocated) current edge of a [`Qmdd::protect`] slot.
    pub fn protected(&self, slot: usize) -> Edge {
        self.protected[slot]
    }

    /// Interns a raw complex value as a weight id.
    pub fn intern_weight(&mut self, v: C64) -> WeightId {
        self.weights.intern(v)
    }

    /// Sets the arena size at which [`Qmdd::maybe_gc`] triggers a
    /// compacting collection (tuning/testing hook; the default is large
    /// enough that small workloads never collect).
    pub fn set_gc_threshold(&mut self, nodes: usize) {
        self.gc_threshold = nodes.max(2);
    }

    /// Caps the arena at `nodes` allocated nodes. Crossing the cap latches
    /// [`Qmdd::budget_exceeded`]; from then on `add`/`mul`/`adjoint` and
    /// [`Qmdd::circuit`] short-circuit to the zero edge, so the package
    /// stops growing instead of exhausting memory. The resulting diagrams
    /// are meaningless and callers must check the flag before trusting any
    /// edge built after the latch. `None` removes the cap.
    pub fn set_node_budget(&mut self, nodes: Option<usize>) {
        self.node_budget = nodes.map(|n| n.max(2));
    }

    /// The configured node budget, if any.
    pub fn node_budget(&self) -> Option<usize> {
        self.node_budget
    }

    /// Whether the arena has crossed the configured node budget. Latched:
    /// stays `true` (even across collections) until
    /// [`Qmdd::clear_budget_exceeded`].
    pub fn budget_exceeded(&self) -> bool {
        self.budget_exceeded
    }

    /// Resets the budget latch (e.g. after a [`Qmdd::compact`] freed space
    /// and the caller wants to retry a bounded computation).
    pub fn clear_budget_exceeded(&mut self) {
        self.budget_exceeded = false;
    }

    /// Resizes the bounded add/mul compute tables to `entries` slots each
    /// (rounded up to a power of two; existing entries are dropped). A
    /// tuning/testing hook: tiny tables force evictions, large tables trade
    /// memory for hit rate.
    pub fn set_cache_capacity(&mut self, entries: usize) {
        self.add_cache.resize(entries);
        self.mul_cache.resize(entries);
    }

    /// The canonical complex value of a weight id.
    pub fn weight_value(&self, id: WeightId) -> C64 {
        self.weights.value(id)
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Variable index of an edge's destination (`u32::MAX` for terminal).
    pub fn var_of(&self, e: Edge) -> u32 {
        self.node(e.node).var
    }

    /// The four outgoing edges of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `e` points at the terminal.
    pub fn children(&self, e: Edge) -> [Edge; 4] {
        assert_ne!(e.node, TERMINAL, "terminal has no children");
        self.node(e.node).edges
    }

    /// Creates (or finds) the normalized node `(var; edges)` and returns a
    /// weighted edge to it.
    pub fn make_node(&mut self, var: u32, mut edges: [Edge; 4]) -> Edge {
        // Zero-weight edges must be the canonical zero edge.
        for e in &mut edges {
            if e.weight == W_ZERO {
                *e = Edge::ZERO;
            }
        }
        // Normalize: divide by the entry of maximal magnitude (ties broken
        // toward the smallest index) so that entry becomes exactly one.
        let mut max_abs = 0.0f64;
        for e in &edges {
            let a = self.weights.value(e.weight).abs();
            if a > max_abs {
                max_abs = a;
            }
        }
        if max_abs == 0.0 {
            return Edge::ZERO;
        }
        let mut idx = 0usize;
        for (i, e) in edges.iter().enumerate() {
            let a = self.weights.value(e.weight).abs();
            if a >= max_abs - 1e-9 * max_abs {
                idx = i;
                break;
            }
        }
        let norm = edges[idx].weight;
        for e in &mut edges {
            e.weight = self.weights.div(e.weight, norm);
        }
        let id = match self.unique.get(&(var, edges)) {
            Some(&id) => id,
            None => {
                let id = self.nodes.len() as NodeId;
                self.nodes.push(Node { var, edges });
                self.unique.insert((var, edges), id);
                self.peak_nodes = self.peak_nodes.max(self.nodes.len());
                if self.node_budget.is_some_and(|b| self.nodes.len() > b) {
                    self.budget_exceeded = true;
                }
                id
            }
        };
        Edge { node: id, weight: norm }
    }

    /// Scales an edge by an interned weight.
    pub fn scale(&mut self, e: Edge, w: WeightId) -> Edge {
        if e.is_zero() || w == W_ZERO {
            return Edge::ZERO;
        }
        Edge {
            node: e.node,
            weight: self.weights.mul(e.weight, w),
        }
    }

    /// Pointwise matrix sum of two diagrams.
    pub fn add(&mut self, a: Edge, b: Edge) -> Edge {
        if self.budget_exceeded {
            return Edge::ZERO;
        }
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node == TERMINAL && b.node == TERMINAL {
            return Edge {
                node: TERMINAL,
                weight: self.weights.add(a.weight, b.weight),
            };
        }
        debug_assert_eq!(
            self.var_of(a),
            self.var_of(b),
            "quasi-reduced diagrams must align"
        );
        // Canonicalize the operand order (addition commutes) and factor the
        // first weight out so the cache is weight-normalized.
        let (a, b) = if (b.node, b.weight) < (a.node, a.weight) {
            (b, a)
        } else {
            (a, b)
        };
        let rel = self.weights.div(b.weight, a.weight);
        self.ct_lookups += 1;
        if let Some(hit) = self.add_cache.get(&(a.node, b.node, rel)) {
            self.ct_hits += 1;
            return self.scale(hit, a.weight);
        }
        let na = *self.node(a.node);
        let nb = *self.node(b.node);
        let mut edges = [Edge::ZERO; 4];
        for (i, slot) in edges.iter_mut().enumerate() {
            let eb = self.scale(nb.edges[i], rel);
            *slot = self.add(na.edges[i], eb);
        }
        let result = self.make_node(na.var, edges);
        self.ct_evictions += u64::from(self.add_cache.insert((a.node, b.node, rel), result));
        self.scale(result, a.weight)
    }

    /// Matrix product `a * b` of two diagrams.
    pub fn mul(&mut self, a: Edge, b: Edge) -> Edge {
        if self.budget_exceeded {
            return Edge::ZERO;
        }
        if a.is_zero() || b.is_zero() {
            return Edge::ZERO;
        }
        if a.node == TERMINAL && b.node == TERMINAL {
            return Edge {
                node: TERMINAL,
                weight: self.weights.mul(a.weight, b.weight),
            };
        }
        debug_assert_eq!(self.var_of(a), self.var_of(b));
        let w = self.weights.mul(a.weight, b.weight);
        self.ct_lookups += 1;
        if let Some(hit) = self.mul_cache.get(&(a.node, b.node)) {
            self.ct_hits += 1;
            return self.scale(hit, w);
        }
        let na = *self.node(a.node);
        let nb = *self.node(b.node);
        let mut edges = [Edge::ZERO; 4];
        for r in 0..2usize {
            for c in 0..2usize {
                // (A*B)_{rc} = A_{r0} B_{0c} + A_{r1} B_{1c}
                let t0 = self.mul(na.edges[2 * r], nb.edges[c]);
                let t1 = self.mul(na.edges[2 * r + 1], nb.edges[2 + c]);
                edges[2 * r + c] = self.add(t0, t1);
            }
        }
        let result = self.make_node(na.var, edges);
        self.ct_evictions += u64::from(self.mul_cache.insert((a.node, b.node), result));
        self.scale(result, w)
    }

    /// Conjugate transpose of a diagram (memoized; linear in the diagram
    /// size).
    pub fn adjoint(&mut self, e: Edge) -> Edge {
        if self.budget_exceeded {
            return Edge::ZERO;
        }
        if e.is_zero() {
            return Edge::ZERO;
        }
        if e.node == TERMINAL {
            return Edge {
                node: TERMINAL,
                weight: self.weights.conj(e.weight),
            };
        }
        let sub = if let Some(hit) = self.adj_cache.get(&e.node) {
            hit
        } else {
            let n = *self.node(e.node);
            let e00 = self.adjoint(n.edges[0]);
            let e01 = self.adjoint(n.edges[2]); // transpose swaps 01 and 10
            let e10 = self.adjoint(n.edges[1]);
            let e11 = self.adjoint(n.edges[3]);
            let s = self.make_node(n.var, [e00, e01, e10, e11]);
            self.adj_cache.insert(e.node, s);
            s
        };
        let w = self.weights.conj(e.weight);
        self.scale(sub, w)
    }

    /// Diagram of a tensor product: `factor(l)` gives the 2x2 matrix at
    /// level `l`; identity factors are expressed as identity matrices.
    pub fn tensor(&mut self, factor: impl Fn(usize) -> M2) -> Edge {
        let mut e = Edge::ONE;
        for l in (0..self.n).rev() {
            let m = factor(l);
            let mut edges = [Edge::ZERO; 4];
            for r in 0..2usize {
                for c in 0..2usize {
                    let v = m[r][c];
                    if !v.is_zero() {
                        let w = self.weights.intern(v);
                        edges[2 * r + c] = self.scale(e, w);
                    }
                }
            }
            e = self.make_node(l as u32, edges);
        }
        e
    }

    /// The identity diagram.
    pub fn identity(&mut self) -> Edge {
        self.tensor(|_| IDENT2)
    }

    /// Diagram of a one-qubit gate `u` acting on `qubit`.
    pub fn single(&mut self, qubit: usize, u: M2) -> Edge {
        assert!(qubit < self.n, "qubit out of range");
        self.tensor(|l| if l == qubit { u } else { IDENT2 })
    }

    /// Diagram of `u` on `target` controlled on every qubit in `controls`
    /// being |1>.
    ///
    /// Uses the tensor decomposition
    /// `gate = I - P + (P with U at the target)`, where `P` projects onto
    /// all-controls-one; both summands are plain tensor products, so the
    /// construction is linear in the number of qubits regardless of how the
    /// controls and target interleave.
    pub fn controlled(&mut self, controls: &[usize], target: usize, u: M2) -> Edge {
        assert!(target < self.n, "target out of range");
        if controls.is_empty() {
            return self.single(target, u);
        }
        // Reusable control mask: O(n + k) per gate instead of O(n * k)
        // `contains` scans per tensor level (the hot path of `gate` and
        // `Simulator::apply` on multi-controlled cascades).
        let mut mask = std::mem::take(&mut self.ctrl_mask);
        mask.clear();
        mask.resize(self.n, false);
        for &c in controls {
            mask[c] = true;
        }
        let proj = self.tensor(|l| if mask[l] { PROJ1 } else { IDENT2 });
        let act = self.tensor(|l| {
            if mask[l] {
                PROJ1
            } else if l == target {
                u
            } else {
                IDENT2
            }
        });
        self.ctrl_mask = mask;
        let id = self.identity();
        let neg_proj = self.scale(proj, W_NEG_ONE);
        let partial = self.add(id, neg_proj);
        self.add(partial, act)
    }

    /// Diagram of an arbitrary [`Gate`].
    pub fn gate(&mut self, g: &Gate) -> Edge {
        match g {
            Gate::Single { op, qubit } => {
                let m = op.matrix();
                let u = [[m[(0, 0)], m[(0, 1)]], [m[(1, 0)], m[(1, 1)]]];
                self.single(*qubit, u)
            }
            Gate::Cx { control, target } => {
                let x = x_matrix();
                self.controlled(&[*control], *target, x)
            }
            Gate::Cz { control, target } => {
                let z = [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]];
                self.controlled(&[*control], *target, z)
            }
            Gate::Swap { a, b } => {
                let x = x_matrix();
                let c1 = self.controlled(&[*a], *b, x);
                let c2 = self.controlled(&[*b], *a, x);
                let p = self.mul(c2, c1);
                self.mul(c1, p)
            }
            Gate::Mct { controls, target } => {
                let x = x_matrix();
                self.controlled(controls, *target, x)
            }
        }
    }

    /// Diagram of a whole circuit (the product of its gate matrices).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the package.
    pub fn circuit(&mut self, c: &Circuit) -> Edge {
        assert!(c.n_qubits() <= self.n, "circuit wider than package");
        let mut acc = self.identity();
        for g in c.gates() {
            if self.budget_exceeded {
                return Edge::ZERO;
            }
            let ge = self.gate(g);
            acc = self.mul(ge, acc);
            acc = self.maybe_gc(acc);
        }
        acc
    }

    /// Triggers a compacting collection when the arena exceeds the GC
    /// threshold; returns the (possibly relocated) root. Roots registered
    /// with [`Qmdd::protect`] survive as well.
    pub fn maybe_gc(&mut self, root: Edge) -> Edge {
        if self.nodes.len() < self.gc_threshold {
            return root;
        }
        let mut roots = [root];
        self.compact(&mut roots);
        // Adaptive re-arm: collect again only after the live set has had
        // room to quadruple, so steady-state workloads are not swept on
        // every gate. The floor keeps tuned (small) watermarks effective.
        self.gc_threshold = (self.nodes.len() * 4).max(self.gc_threshold.min(1 << 22));
        roots[0]
    }

    /// Compacts the arena, keeping only nodes reachable from `roots` (and
    /// any [`Qmdd::protect`]-ed roots, which are rewritten in place), and
    /// rebuilds the weight table from the surviving edges. The bounded
    /// compute tables are invalidated by a generation bump; outstanding
    /// [`Edge`]s and [`WeightId`]s other than the passed/protected roots
    /// become stale.
    pub fn compact(&mut self, roots: &mut [Edge]) {
        let nodes_before = self.nodes.len();
        // Scratch reuse: the relocation map, DFS stack and the spare arena
        // buffer persist across collections, so a sweep allocates nothing
        // in steady state.
        let mut map = std::mem::take(&mut self.gc_map);
        let mut stack = std::mem::take(&mut self.gc_stack);
        let mut new_nodes = std::mem::take(&mut self.spare_nodes);
        map.clear();
        stack.clear();
        new_nodes.clear();
        map.insert(TERMINAL, TERMINAL);
        new_nodes.push(Node {
            var: u32::MAX,
            edges: [Edge::ZERO; 4],
        });
        let mut protected = std::mem::take(&mut self.protected);
        // Iterative post-order copy: a node is emitted once all children
        // have been relocated.
        for root in roots.iter_mut().chain(protected.iter_mut()) {
            stack.push(root.node);
            while let Some(&id) = stack.last() {
                if map.contains_key(&id) {
                    stack.pop();
                    continue;
                }
                let node = self.nodes[id as usize];
                let mut ready = true;
                for e in node.edges {
                    if !map.contains_key(&e.node) {
                        ready = false;
                        stack.push(e.node);
                    }
                }
                if ready {
                    stack.pop();
                    let mut edges = node.edges;
                    for e in &mut edges {
                        e.node = map[&e.node];
                    }
                    let new_id = new_nodes.len() as NodeId;
                    new_nodes.push(Node {
                        var: node.var,
                        edges,
                    });
                    map.insert(id, new_id);
                }
            }
            root.node = map[&root.node];
        }
        // Rebuild the complex (weight) table from surviving edges so dead
        // amplitudes minted by discarded intermediates are dropped too.
        let mut new_weights = WeightTable::new();
        let mut wmap: FxHashMap<WeightId, WeightId> = FxHashMap::default();
        let remap = |old: WeightId, wmap: &mut FxHashMap<WeightId, WeightId>,
                         new_weights: &mut WeightTable,
                         old_weights: &WeightTable| {
            *wmap
                .entry(old)
                .or_insert_with(|| new_weights.intern(old_weights.value(old)))
        };
        for node in new_nodes.iter_mut().skip(1) {
            for e in &mut node.edges {
                e.weight = remap(e.weight, &mut wmap, &mut new_weights, &self.weights);
            }
        }
        for root in roots.iter_mut().chain(protected.iter_mut()) {
            root.weight = remap(root.weight, &mut wmap, &mut new_weights, &self.weights);
        }
        self.weights = new_weights;
        self.unique.clear();
        for (i, n) in new_nodes.iter().enumerate().skip(1) {
            self.unique.insert((n.var, n.edges), i as NodeId);
        }
        self.spare_nodes = std::mem::replace(&mut self.nodes, new_nodes);
        self.protected = protected;
        self.gc_map = map;
        self.gc_stack = stack;
        self.add_cache.invalidate();
        self.mul_cache.invalidate();
        self.adj_cache.invalidate();
        self.gc_runs += 1;
        self.nodes_reclaimed += nodes_before.saturating_sub(self.nodes.len()) as u64;
    }

    /// Per-level node counts of a diagram: entry `l` is the number of
    /// distinct nodes at variable level `l` reachable from `e`. A
    /// compactness profile for diagnosing where a diagram grows.
    pub fn node_profile(&self, e: Edge) -> Vec<usize> {
        let mut profile = vec![0usize; self.n];
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![e.node];
        while let Some(id) = stack.pop() {
            if id == TERMINAL || !seen.insert(id) {
                continue;
            }
            profile[self.node(id).var as usize] += 1;
            for ch in self.node(id).edges {
                stack.push(ch.node);
            }
        }
        profile
    }

    /// Number of distinct non-terminal nodes reachable from `e`.
    pub fn node_count(&self, e: Edge) -> usize {
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![e.node];
        while let Some(id) = stack.pop() {
            if id == TERMINAL || !seen.insert(id) {
                continue;
            }
            for ch in self.node(id).edges {
                stack.push(ch.node);
            }
        }
        seen.len()
    }

    /// The non-zero entries of one column of the represented matrix: the
    /// amplitudes of `U |input>` as `(row, amplitude)` pairs, sorted by
    /// row.
    ///
    /// Runs in time proportional to the number of non-zero output
    /// amplitudes (one, for the permutation matrices of classical
    /// reversible circuits — which makes this a practical functional
    /// spot-check even on a 96-qubit register where dense expansion is
    /// impossible).
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^n`.
    pub fn basis_column(&self, e: Edge, input: u128) -> Vec<(u128, C64)> {
        assert!(self.n <= 128, "basis_column supports at most 128 qubits");
        assert!(
            self.n >= 128 || input < (1u128 << self.n),
            "basis state out of range"
        );
        let mut out = Vec::new();
        self.column_walk(e, input, 0, 0, C64::ONE, &mut out);
        out.sort_by_key(|(row, _)| *row);
        out
    }

    fn column_walk(
        &self,
        e: Edge,
        input: u128,
        var: usize,
        row: u128,
        acc: C64,
        out: &mut Vec<(u128, C64)>,
    ) {
        if e.is_zero() {
            return;
        }
        let w = acc * self.weights.value(e.weight);
        if e.node == TERMINAL {
            out.push((row, w));
            return;
        }
        let col_bit = (input >> (self.n - 1 - var)) & 1;
        let node = self.node(e.node);
        for r in 0..2u128 {
            self.column_walk(
                node.edges[(2 * r + col_bit) as usize],
                input,
                var + 1,
                row << 1 | r,
                w,
                out,
            );
        }
    }

    /// The trace of the represented matrix, computed on the diagram
    /// (linear in the diagram size, so it works at any register width).
    pub fn trace(&self, e: Edge) -> C64 {
        let mut memo: crate::fxhash::FxHashMap<NodeId, C64> = crate::fxhash::FxHashMap::default();
        self.trace_rec(e, self.n as u32, &mut memo)
    }

    fn trace_rec(
        &self,
        e: Edge,
        levels_below: u32,
        memo: &mut crate::fxhash::FxHashMap<NodeId, C64>,
    ) -> C64 {
        if e.is_zero() {
            return C64::ZERO;
        }
        let w = self.weights.value(e.weight);
        if e.node == TERMINAL {
            // A scalar standing for an identity-weighted block: each of
            // the remaining levels doubles the diagonal sum only when the
            // edge skipped levels — in quasi-reduced form a non-zero
            // terminal edge sits at the bottom, so levels_below is 0.
            debug_assert_eq!(levels_below, 0, "quasi-reduced form");
            return w;
        }
        let node = self.node(e.node);
        let sub = if let Some(&hit) = memo.get(&e.node) {
            hit
        } else {
            let t0 = self.trace_rec(node.edges[0], levels_below - 1, memo);
            let t1 = self.trace_rec(node.edges[3], levels_below - 1, memo);
            let s = t0 + t1;
            memo.insert(e.node, s);
            s
        };
        w * sub
    }

    /// Expands a diagram to a dense matrix (tests and small circuits only).
    pub fn to_matrix(&self, e: Edge) -> Matrix {
        let dim = 1usize << self.n;
        let mut m = Matrix::zeros(dim);
        self.fill(e, 0, 0, 0, C64::ONE, &mut m);
        m
    }

    fn fill(&self, e: Edge, var: usize, row: usize, col: usize, acc: C64, m: &mut Matrix) {
        if e.is_zero() {
            return;
        }
        let w = acc * self.weights.value(e.weight);
        if e.node == TERMINAL {
            debug_assert_eq!(var, self.n, "nonzero terminal edge above bottom");
            m[(row, col)] += w;
            return;
        }
        let node = self.node(e.node);
        for r in 0..2usize {
            for c in 0..2usize {
                self.fill(
                    node.edges[2 * r + c],
                    var + 1,
                    row << 1 | r,
                    col << 1 | c,
                    w,
                    m,
                );
            }
        }
    }
}

fn x_matrix() -> M2 {
    [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::SingleOp;

    fn check_gate_matches_dense(g: Gate, n: usize) {
        let mut pkg = Qmdd::new(n);
        let e = pkg.gate(&g);
        let dd = pkg.to_matrix(e);
        let dense = g.to_matrix(n);
        assert!(dd.approx_eq(&dense), "gate {g} mismatch\nDD:\n{dd}\ndense:\n{dense}");
    }

    #[test]
    fn single_qubit_gates_match_dense() {
        for op in qsyn_gate::SINGLE_OPS {
            for q in 0..3 {
                check_gate_matches_dense(Gate::single(op, q), 3);
            }
        }
    }

    #[test]
    fn cnot_both_orientations_match_dense() {
        check_gate_matches_dense(Gate::cx(0, 1), 2);
        check_gate_matches_dense(Gate::cx(1, 0), 2);
        check_gate_matches_dense(Gate::cx(0, 2), 3);
        check_gate_matches_dense(Gate::cx(2, 0), 3);
    }

    #[test]
    fn control_below_target_works() {
        // The tensor-sum construction must not care about level order.
        check_gate_matches_dense(Gate::cx(2, 0), 4);
        check_gate_matches_dense(Gate::mct(vec![1, 3], 0), 4);
        check_gate_matches_dense(Gate::mct(vec![0, 3], 1), 4);
    }

    #[test]
    fn cz_swap_toffoli_match_dense() {
        check_gate_matches_dense(Gate::cz(0, 1), 2);
        check_gate_matches_dense(Gate::cz(1, 0), 3);
        check_gate_matches_dense(Gate::swap(0, 1), 2);
        check_gate_matches_dense(Gate::swap(0, 2), 3);
        check_gate_matches_dense(Gate::toffoli(0, 1, 2), 3);
        check_gate_matches_dense(Gate::toffoli(1, 2, 0), 3);
        check_gate_matches_dense(Gate::mct(vec![0, 1, 2], 3), 4);
    }

    #[test]
    fn fig1_cnot_qmdd_structure() {
        // Paper Fig. 1: CNOT with control x0, target x1 has a root whose
        // U01 and U10 quadrants are zero, U00 is the identity sub-matrix,
        // and U11 is the X sub-matrix; three non-terminal vertices total.
        let mut pkg = Qmdd::new(2);
        let e = pkg.gate(&Gate::cx(0, 1));
        assert_eq!(pkg.var_of(e), 0);
        let ch = pkg.children(e);
        assert!(ch[1].is_zero() && ch[2].is_zero());
        assert!(!ch[0].is_zero() && !ch[3].is_zero());
        assert_ne!(ch[0].node, ch[3].node, "identity and X submatrices differ");
        assert_eq!(pkg.node_count(e), 3);
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut pkg = Qmdd::new(3);
        let id = pkg.identity();
        let h = pkg.gate(&Gate::h(1));
        let hi = pkg.mul(h, id);
        let ih = pkg.mul(id, h);
        assert_eq!(hi, h);
        assert_eq!(ih, h);
    }

    #[test]
    fn add_commutes_and_scales() {
        let mut pkg = Qmdd::new(2);
        let a = pkg.gate(&Gate::h(0));
        let b = pkg.gate(&Gate::cx(0, 1));
        let ab = pkg.add(a, b);
        let ba = pkg.add(b, a);
        assert_eq!(ab, ba);
        let da = pkg.to_matrix(a);
        let db = pkg.to_matrix(b);
        let mut expected = Matrix::zeros(4);
        for i in 0..4 {
            for j in 0..4 {
                expected[(i, j)] = da[(i, j)] + db[(i, j)];
            }
        }
        assert!(pkg.to_matrix(ab).approx_eq(&expected));
    }

    #[test]
    fn mul_matches_dense_product() {
        let mut pkg = Qmdd::new(3);
        let mut c1 = Circuit::new(3);
        c1.push(Gate::h(0));
        c1.push(Gate::cx(0, 1));
        c1.push(Gate::t(2));
        let mut c2 = Circuit::new(3);
        c2.push(Gate::cx(1, 2));
        c2.push(Gate::single(SingleOp::Sdg, 0));
        let e1 = pkg.circuit(&c1);
        let e2 = pkg.circuit(&c2);
        let prod = pkg.mul(e2, e1);
        let dense = c2.to_matrix().mul(&c1.to_matrix());
        assert!(pkg.to_matrix(prod).approx_eq(&dense));
    }

    #[test]
    fn canonicity_same_function_same_edge() {
        // SWAP as a native gate vs. as three CNOTs: identical root edges.
        let mut pkg = Qmdd::new(3);
        let mut a = Circuit::new(3);
        a.push(Gate::swap(1, 2));
        let mut b = Circuit::new(3);
        b.push(Gate::cx(1, 2));
        b.push(Gate::cx(2, 1));
        b.push(Gate::cx(1, 2));
        assert_eq!(pkg.circuit(&a), pkg.circuit(&b));
    }

    #[test]
    fn distinct_functions_distinct_edges() {
        let mut pkg = Qmdd::new(2);
        let mut a = Circuit::new(2);
        a.push(Gate::cx(0, 1));
        let mut b = Circuit::new(2);
        b.push(Gate::cx(1, 0));
        assert_ne!(pkg.circuit(&a), pkg.circuit(&b));
    }

    #[test]
    fn adjoint_matches_dense() {
        let mut pkg = Qmdd::new(2);
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::t(0));
        c.push(Gate::cx(0, 1));
        let e = pkg.circuit(&c);
        let adj = pkg.adjoint(e);
        assert!(pkg.to_matrix(adj).approx_eq(&c.to_matrix().adjoint()));
        // U * U^dagger = I
        let prod = pkg.mul(e, adj);
        let id = pkg.identity();
        assert_eq!(prod, id);
    }

    #[test]
    fn hadamard_weight_normalization() {
        // H's QMDD: all entries 1/sqrt(2); normalized node has weights
        // 1,1,1,-1 and the root weight carries the scale.
        let mut pkg = Qmdd::new(1);
        let e = pkg.gate(&Gate::h(0));
        let w = pkg.weight_value(e.weight);
        assert!((w.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        let ch = pkg.children(e);
        assert_eq!(ch[0].weight, W_ONE);
    }

    #[test]
    fn compact_preserves_semantics() {
        let mut pkg = Qmdd::new(3);
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::tdg(2));
        let before = pkg.circuit(&c);
        let dense = pkg.to_matrix(before);
        let mut roots = [before];
        pkg.compact(&mut roots);
        assert!(pkg.to_matrix(roots[0]).approx_eq(&dense));
        // After compaction the arena contains only reachable nodes.
        assert_eq!(pkg.node_count_total(), pkg.node_count(roots[0]) + 1);
        // And further operations still work.
        let h = pkg.gate(&Gate::h(0));
        let _ = pkg.mul(h, roots[0]);
    }

    #[test]
    fn basis_column_matches_dense() {
        let mut pkg = Qmdd::new(3);
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::toffoli(0, 1, 2));
        let e = pkg.circuit(&c);
        let dense = pkg.to_matrix(e);
        for input in 0..8u64 {
            let col = pkg.basis_column(e, input as u128);
            let mut nonzero = 0;
            for (row, amp) in &col {
                assert!(dense[(*row as usize, input as usize)].approx_eq(*amp));
                nonzero += 1;
            }
            for row in 0..8usize {
                if !dense[(row, input as usize)].is_zero() {
                    nonzero -= 1;
                }
            }
            assert_eq!(nonzero, 0, "column {input} entry count");
        }
    }

    #[test]
    fn basis_column_on_permutation_is_single_entry() {
        let mut pkg = Qmdd::new(4);
        let mut c = Circuit::new(4);
        c.push(Gate::mct(vec![0, 1, 2], 3));
        c.push(Gate::cx(3, 0));
        let e = pkg.circuit(&c);
        for input in 0..16u64 {
            let col = pkg.basis_column(e, input as u128);
            assert_eq!(col.len(), 1, "permutation column {input}");
            assert_eq!(col[0].0, c.permute_basis(input) as u128);
            assert!(col[0].1.is_one());
        }
    }

    #[test]
    fn node_profile_counts_levels() {
        let mut pkg = Qmdd::new(3);
        let id = pkg.identity();
        assert_eq!(pkg.node_profile(id), vec![1, 1, 1]);
        let e = pkg.gate(&Gate::cx(0, 2));
        let profile = pkg.node_profile(e);
        assert_eq!(profile.iter().sum::<usize>(), pkg.node_count(e));
        assert_eq!(profile[0], 1, "one root node");
    }

    #[test]
    fn automatic_gc_preserves_circuit_building() {
        // Force collections every few nodes and rebuild a circuit whose
        // result is known; the fold in `circuit` must survive relocation.
        let mut pkg = Qmdd::new(4);
        pkg.set_gc_threshold(8);
        let mut c = Circuit::new(4);
        for k in 0..6 {
            c.push(Gate::h(k % 4));
            c.push(Gate::cx(k % 4, (k + 1) % 4));
            c.push(Gate::t((k + 2) % 4));
        }
        let e = pkg.circuit(&c);
        let mut clean = Qmdd::new(4);
        let expected = clean.circuit(&c);
        assert!(pkg.to_matrix(e).approx_eq(&clean.to_matrix(expected)));
    }

    #[test]
    fn adjoint_is_an_involution() {
        let mut pkg = Qmdd::new(2);
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::t(1));
        c.push(Gate::cx(0, 1));
        let e = pkg.circuit(&c);
        let back = pkg.adjoint(e);
        let again = pkg.adjoint(back);
        assert_eq!(again, e, "adjoint twice is the identity map");
    }

    #[test]
    fn identity_diagram_is_linear_size() {
        for n in [1usize, 8, 64, 96] {
            let mut pkg = Qmdd::new(n);
            let id = pkg.identity();
            assert_eq!(pkg.node_count(id), n, "one shared node per level");
        }
    }

    #[test]
    fn weight_table_stays_bounded_on_clifford_t() {
        // Thousands of multiplications over the Clifford+T value ring must
        // not mint unbounded fresh weights (the snapping property).
        let mut pkg = Qmdd::new(3);
        let mut c = Circuit::new(3);
        let mut s = 7u64;
        for _ in 0..600 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            match s % 4 {
                0 => c.push(Gate::h((s % 3) as usize)),
                1 => c.push(Gate::t((s % 3) as usize)),
                2 => c.push(Gate::tdg((s % 3) as usize)),
                _ => {
                    let a = (s % 3) as usize;
                    let b = ((s >> 8) % 3) as usize;
                    if a != b {
                        c.push(Gate::cx(a, b));
                    }
                }
            }
        }
        let e = pkg.circuit(&c);
        // The table grows with the circuit's true amplitude ring (new
        // denominators appear with depth), but snapping must keep the
        // numerics exact: after 600 gates the product is still exactly
        // unitary in the canonical representation.
        let adj = pkg.adjoint(e);
        let prod = pkg.mul(e, adj);
        let id = pkg.identity();
        assert_eq!(prod, id, "unitarity lost after deep product");
    }

    #[test]
    fn gc_counters_track_sweeps_and_reclaimed_nodes() {
        let mut pkg = Qmdd::new(4);
        pkg.set_gc_threshold(8);
        let mut c = Circuit::new(4);
        for k in 0..8 {
            c.push(Gate::h(k % 4));
            c.push(Gate::cx(k % 4, (k + 1) % 4));
            c.push(Gate::t((k + 2) % 4));
        }
        let _ = pkg.circuit(&c);
        let stats = pkg.cache_stats();
        assert!(stats.gc_runs > 0, "forced watermark must trigger sweeps");
        assert!(stats.nodes_reclaimed > 0, "sweeps must reclaim dead nodes");
    }

    #[test]
    fn protected_roots_survive_collections() {
        let mut pkg = Qmdd::new(3);
        let mut a = Circuit::new(3);
        a.push(Gate::swap(0, 2));
        let ea = pkg.circuit(&a);
        let dense = pkg.to_matrix(ea);
        let slot = pkg.protect(ea);
        // Collect on essentially every gate of the second build.
        pkg.set_gc_threshold(2);
        let mut b = Circuit::new(3);
        b.push(Gate::h(0));
        b.push(Gate::cx(0, 1));
        b.push(Gate::toffoli(0, 1, 2));
        let _ = pkg.circuit(&b);
        assert!(pkg.cache_stats().gc_runs > 0, "sweeps must have happened");
        let ea_now = pkg.protected(slot);
        assert!(
            pkg.to_matrix(ea_now).approx_eq(&dense),
            "protected root semantics must survive relocation"
        );
    }

    #[test]
    fn bounded_compute_table_evicts_and_stays_correct() {
        let mut pkg = Qmdd::new(4);
        pkg.set_cache_capacity(16); // tiny: force collisions
        let mut c = Circuit::new(4);
        let mut s = 11u64;
        for _ in 0..120 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            match s % 4 {
                0 => c.push(Gate::h((s % 4) as usize)),
                1 => c.push(Gate::t((s % 4) as usize)),
                2 => c.push(Gate::tdg((s % 4) as usize)),
                _ => {
                    let a = (s % 4) as usize;
                    let b = ((s >> 8) % 4) as usize;
                    if a != b {
                        c.push(Gate::cx(a, b));
                    }
                }
            }
        }
        let e = pkg.circuit(&c);
        assert!(pkg.cache_stats().evictions > 0, "tiny table must evict");
        let mut clean = Qmdd::new(4);
        let expected = clean.circuit(&c);
        assert!(pkg.to_matrix(e).approx_eq(&clean.to_matrix(expected)));
    }

    #[test]
    fn compact_rebuilds_weight_table() {
        let mut pkg = Qmdd::new(3);
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::h(q));
            c.push(Gate::t(q));
        }
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        let before = pkg.circuit(&c);
        let dense = pkg.to_matrix(before);
        let weights_before = pkg.weight_count();
        let mut roots = [before];
        pkg.compact(&mut roots);
        assert!(
            pkg.weight_count() <= weights_before,
            "sweep must not mint weights"
        );
        assert!(pkg.to_matrix(roots[0]).approx_eq(&dense));
        // Arithmetic still works against the rebuilt weight table.
        let h = pkg.gate(&Gate::h(0));
        let adj = pkg.adjoint(roots[0]);
        let _ = pkg.mul(h, adj);
    }

    #[test]
    fn node_budget_latches_and_halts_growth() {
        let mut pkg = Qmdd::new(6);
        pkg.set_node_budget(Some(16));
        let mut c = Circuit::new(6);
        let mut s = 5u64;
        for _ in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            match s % 3 {
                0 => c.push(Gate::h((s % 6) as usize)),
                1 => c.push(Gate::t((s % 6) as usize)),
                _ => {
                    let a = (s % 6) as usize;
                    let b = ((s >> 8) % 6) as usize;
                    if a != b {
                        c.push(Gate::cx(a, b));
                    }
                }
            }
        }
        let e = pkg.circuit(&c);
        assert!(pkg.budget_exceeded(), "dense 6-qubit build must blow 16 nodes");
        assert!(e.is_zero(), "poisoned build must return the zero edge");
        // Growth halts promptly: the arena overshoots the cap by at most
        // the allocations of the gate under construction, never the ~2^6
        // node diagrams this circuit actually needs.
        assert!(
            pkg.node_count_total() < 64,
            "arena kept growing after the latch: {}",
            pkg.node_count_total()
        );
        // Arithmetic short-circuits while latched.
        let id = pkg.identity();
        assert!(pkg.mul(id, id).is_zero());
        assert!(pkg.add(id, id).is_zero());
        assert!(pkg.adjoint(id).is_zero());
    }

    #[test]
    fn budget_latch_clears_and_package_recovers() {
        let mut pkg = Qmdd::new(2);
        pkg.set_node_budget(Some(2));
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let _ = pkg.circuit(&c);
        assert!(pkg.budget_exceeded());
        pkg.set_node_budget(None);
        pkg.clear_budget_exceeded();
        let e = pkg.circuit(&c);
        assert!(!e.is_zero(), "cleared package must compute normally again");
        let mut clean = Qmdd::new(2);
        let expected = clean.circuit(&c);
        assert!(pkg.to_matrix(e).approx_eq(&clean.to_matrix(expected)));
    }

    #[test]
    fn generous_budget_never_latches() {
        let mut pkg = Qmdd::new(3);
        pkg.set_node_budget(Some(1 << 20));
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::toffoli(0, 1, 2));
        let e = pkg.circuit(&c);
        assert!(!pkg.budget_exceeded());
        let mut clean = Qmdd::new(3);
        let expected = clean.circuit(&c);
        assert!(pkg.to_matrix(e).approx_eq(&clean.to_matrix(expected)));
    }

    #[test]
    fn long_product_stays_exact() {
        // T applied eight times is the identity; snapping must keep this
        // exact through the weight table.
        let mut pkg = Qmdd::new(1);
        let mut c = Circuit::new(1);
        for _ in 0..8 {
            c.push(Gate::t(0));
        }
        let e = pkg.circuit(&c);
        let id = pkg.identity();
        assert_eq!(e, id);
    }
}
