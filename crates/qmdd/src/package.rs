//! The QMDD package: hash-consed nodes, cached arithmetic, and circuit
//! construction.
//!
//! A QMDD (Miller & Thornton 2006) represents a `2^n x 2^n` complex matrix
//! as a directed acyclic graph. Each non-terminal vertex stands for one
//! qubit variable and has four outgoing edges for the four quadrants
//! `U00, U01, U10, U11` of the matrix at that level (paper Fig. 1). With a
//! fixed variable order and normalized edge weights the representation is
//! canonical: two circuits have the same matrix if and only if their QMDD
//! root edges are identical, which is how the compiler performs formal
//! verification.
//!
//! This implementation uses the *quasi-reduced* form (every non-zero path
//! visits every variable) so that level bookkeeping stays trivial; zero
//! matrices are the sole early-terminating edges.

use crate::ctable::{WeightId, WeightTable, W_NEG_ONE, W_ONE, W_ZERO};
use crate::fxhash::FxHashMap;
use qsyn_circuit::Circuit;
use qsyn_gate::{C64, Gate, Matrix};

/// Index of a node in the package arena. `0` is the terminal.
pub type NodeId = u32;

/// The terminal vertex id.
pub const TERMINAL: NodeId = 0;

/// A weighted edge into the diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Destination node.
    pub node: NodeId,
    /// Interned complex weight multiplying the whole sub-diagram.
    pub weight: WeightId,
}

impl Edge {
    /// The edge representing the zero matrix.
    pub const ZERO: Edge = Edge {
        node: TERMINAL,
        weight: W_ZERO,
    };

    /// The terminal edge with weight one (the scalar `1`).
    pub const ONE: Edge = Edge {
        node: TERMINAL,
        weight: W_ONE,
    };

    /// Whether this edge denotes the zero matrix.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight == W_ZERO
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    edges: [Edge; 4],
}

/// A 2x2 complex matrix used when assembling gate diagrams.
pub type M2 = [[C64; 2]; 2];

const IDENT2: M2 = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
const PROJ1: M2 = [[C64::ZERO, C64::ZERO], [C64::ZERO, C64::ONE]];

/// The QMDD package for diagrams over a fixed number of qubit variables.
///
/// Variable `0` is the top-most qubit (most significant basis bit),
/// matching the `x0 -> x1 -> ...` order of the paper.
///
/// # Examples
///
/// ```
/// use qsyn_qmdd::Qmdd;
/// use qsyn_circuit::Circuit;
/// use qsyn_gate::Gate;
///
/// let mut a = Circuit::new(2);
/// a.push(Gate::swap(0, 1));
/// let mut b = Circuit::new(2);
/// b.push(Gate::cx(0, 1));
/// b.push(Gate::cx(1, 0));
/// b.push(Gate::cx(0, 1));
///
/// let mut pkg = Qmdd::new(2);
/// let ea = pkg.circuit(&a);
/// let eb = pkg.circuit(&b);
/// assert_eq!(ea, eb); // canonical: pointer equality is matrix equality
/// ```
#[derive(Debug)]
pub struct Qmdd {
    n: usize,
    nodes: Vec<Node>,
    unique: FxHashMap<(u32, [Edge; 4]), NodeId>,
    weights: WeightTable,
    add_cache: FxHashMap<(NodeId, NodeId, WeightId), Edge>,
    mul_cache: FxHashMap<(NodeId, NodeId), Edge>,
    adj_cache: FxHashMap<NodeId, Edge>,
    peak_nodes: usize,
    gc_threshold: usize,
    ct_lookups: u64,
    ct_hits: u64,
}

/// Compute-table (add/mul cache) traffic counters of a [`Qmdd`] package.
///
/// Exposed so the compiler's trace layer can report how effectively the
/// memoization caches are absorbing recursive arithmetic during
/// verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cache probes performed by `add` and `mul`.
    pub lookups: u64,
    /// Probes answered from the cache.
    pub hits: u64,
}

impl CacheStats {
    /// Fraction of probes answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

impl Qmdd {
    /// Creates a package for diagrams over `n` qubits.
    pub fn new(n: usize) -> Self {
        Qmdd {
            n,
            nodes: vec![Node {
                var: u32::MAX,
                edges: [Edge::ZERO; 4],
            }],
            unique: FxHashMap::default(),
            weights: WeightTable::new(),
            add_cache: FxHashMap::default(),
            mul_cache: FxHashMap::default(),
            adj_cache: FxHashMap::default(),
            peak_nodes: 1,
            ct_lookups: 0,
            ct_hits: 0,
            gc_threshold: 1 << 22,
        }
    }

    /// Number of qubit variables.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Current number of allocated nodes (including the terminal).
    pub fn node_count_total(&self) -> usize {
        self.nodes.len()
    }

    /// Largest arena size observed so far.
    pub fn peak_node_count(&self) -> usize {
        self.peak_nodes
    }

    /// Current number of entries in the unique (hash-cons) table.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Compute-table traffic counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.ct_lookups,
            hits: self.ct_hits,
        }
    }

    /// Interns a raw complex value as a weight id.
    pub fn intern_weight(&mut self, v: C64) -> WeightId {
        self.weights.intern(v)
    }

    /// Sets the arena size at which [`Qmdd::maybe_gc`] triggers a
    /// compacting collection (tuning/testing hook; the default is large
    /// enough that small workloads never collect).
    pub fn set_gc_threshold(&mut self, nodes: usize) {
        self.gc_threshold = nodes.max(2);
    }

    /// The canonical complex value of a weight id.
    pub fn weight_value(&self, id: WeightId) -> C64 {
        self.weights.value(id)
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Variable index of an edge's destination (`u32::MAX` for terminal).
    pub fn var_of(&self, e: Edge) -> u32 {
        self.node(e.node).var
    }

    /// The four outgoing edges of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `e` points at the terminal.
    pub fn children(&self, e: Edge) -> [Edge; 4] {
        assert_ne!(e.node, TERMINAL, "terminal has no children");
        self.node(e.node).edges
    }

    /// Creates (or finds) the normalized node `(var; edges)` and returns a
    /// weighted edge to it.
    pub fn make_node(&mut self, var: u32, mut edges: [Edge; 4]) -> Edge {
        // Zero-weight edges must be the canonical zero edge.
        for e in &mut edges {
            if e.weight == W_ZERO {
                *e = Edge::ZERO;
            }
        }
        // Normalize: divide by the entry of maximal magnitude (ties broken
        // toward the smallest index) so that entry becomes exactly one.
        let mut max_abs = 0.0f64;
        for e in &edges {
            let a = self.weights.value(e.weight).abs();
            if a > max_abs {
                max_abs = a;
            }
        }
        if max_abs == 0.0 {
            return Edge::ZERO;
        }
        let mut idx = 0usize;
        for (i, e) in edges.iter().enumerate() {
            let a = self.weights.value(e.weight).abs();
            if a >= max_abs - 1e-9 * max_abs {
                idx = i;
                break;
            }
        }
        let norm = edges[idx].weight;
        for e in &mut edges {
            e.weight = self.weights.div(e.weight, norm);
        }
        let id = match self.unique.get(&(var, edges)) {
            Some(&id) => id,
            None => {
                let id = self.nodes.len() as NodeId;
                self.nodes.push(Node { var, edges });
                self.unique.insert((var, edges), id);
                self.peak_nodes = self.peak_nodes.max(self.nodes.len());
                id
            }
        };
        Edge { node: id, weight: norm }
    }

    /// Scales an edge by an interned weight.
    pub fn scale(&mut self, e: Edge, w: WeightId) -> Edge {
        if e.is_zero() || w == W_ZERO {
            return Edge::ZERO;
        }
        Edge {
            node: e.node,
            weight: self.weights.mul(e.weight, w),
        }
    }

    /// Pointwise matrix sum of two diagrams.
    pub fn add(&mut self, a: Edge, b: Edge) -> Edge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node == TERMINAL && b.node == TERMINAL {
            return Edge {
                node: TERMINAL,
                weight: self.weights.add(a.weight, b.weight),
            };
        }
        debug_assert_eq!(
            self.var_of(a),
            self.var_of(b),
            "quasi-reduced diagrams must align"
        );
        // Canonicalize the operand order (addition commutes) and factor the
        // first weight out so the cache is weight-normalized.
        let (a, b) = if (b.node, b.weight) < (a.node, a.weight) {
            (b, a)
        } else {
            (a, b)
        };
        let rel = self.weights.div(b.weight, a.weight);
        self.ct_lookups += 1;
        if let Some(&hit) = self.add_cache.get(&(a.node, b.node, rel)) {
            self.ct_hits += 1;
            return self.scale(hit, a.weight);
        }
        let na = *self.node(a.node);
        let nb = *self.node(b.node);
        let mut edges = [Edge::ZERO; 4];
        for (i, slot) in edges.iter_mut().enumerate() {
            let eb = self.scale(nb.edges[i], rel);
            *slot = self.add(na.edges[i], eb);
        }
        let result = self.make_node(na.var, edges);
        self.add_cache.insert((a.node, b.node, rel), result);
        self.scale(result, a.weight)
    }

    /// Matrix product `a * b` of two diagrams.
    pub fn mul(&mut self, a: Edge, b: Edge) -> Edge {
        if a.is_zero() || b.is_zero() {
            return Edge::ZERO;
        }
        if a.node == TERMINAL && b.node == TERMINAL {
            return Edge {
                node: TERMINAL,
                weight: self.weights.mul(a.weight, b.weight),
            };
        }
        debug_assert_eq!(self.var_of(a), self.var_of(b));
        let w = self.weights.mul(a.weight, b.weight);
        self.ct_lookups += 1;
        if let Some(&hit) = self.mul_cache.get(&(a.node, b.node)) {
            self.ct_hits += 1;
            return self.scale(hit, w);
        }
        let na = *self.node(a.node);
        let nb = *self.node(b.node);
        let mut edges = [Edge::ZERO; 4];
        for r in 0..2usize {
            for c in 0..2usize {
                // (A*B)_{rc} = A_{r0} B_{0c} + A_{r1} B_{1c}
                let t0 = self.mul(na.edges[2 * r], nb.edges[c]);
                let t1 = self.mul(na.edges[2 * r + 1], nb.edges[2 + c]);
                edges[2 * r + c] = self.add(t0, t1);
            }
        }
        let result = self.make_node(na.var, edges);
        self.mul_cache.insert((a.node, b.node), result);
        self.scale(result, w)
    }

    /// Conjugate transpose of a diagram (memoized; linear in the diagram
    /// size).
    pub fn adjoint(&mut self, e: Edge) -> Edge {
        if e.is_zero() {
            return Edge::ZERO;
        }
        if e.node == TERMINAL {
            return Edge {
                node: TERMINAL,
                weight: self.weights.conj(e.weight),
            };
        }
        let sub = if let Some(&hit) = self.adj_cache.get(&e.node) {
            hit
        } else {
            let n = *self.node(e.node);
            let e00 = self.adjoint(n.edges[0]);
            let e01 = self.adjoint(n.edges[2]); // transpose swaps 01 and 10
            let e10 = self.adjoint(n.edges[1]);
            let e11 = self.adjoint(n.edges[3]);
            let s = self.make_node(n.var, [e00, e01, e10, e11]);
            self.adj_cache.insert(e.node, s);
            s
        };
        let w = self.weights.conj(e.weight);
        self.scale(sub, w)
    }

    /// Diagram of a tensor product: `factor(l)` gives the 2x2 matrix at
    /// level `l`; identity factors are expressed as identity matrices.
    pub fn tensor(&mut self, factor: impl Fn(usize) -> M2) -> Edge {
        let mut e = Edge::ONE;
        for l in (0..self.n).rev() {
            let m = factor(l);
            let mut edges = [Edge::ZERO; 4];
            for r in 0..2usize {
                for c in 0..2usize {
                    let v = m[r][c];
                    if !v.is_zero() {
                        let w = self.weights.intern(v);
                        edges[2 * r + c] = self.scale(e, w);
                    }
                }
            }
            e = self.make_node(l as u32, edges);
        }
        e
    }

    /// The identity diagram.
    pub fn identity(&mut self) -> Edge {
        self.tensor(|_| IDENT2)
    }

    /// Diagram of a one-qubit gate `u` acting on `qubit`.
    pub fn single(&mut self, qubit: usize, u: M2) -> Edge {
        assert!(qubit < self.n, "qubit out of range");
        self.tensor(|l| if l == qubit { u } else { IDENT2 })
    }

    /// Diagram of `u` on `target` controlled on every qubit in `controls`
    /// being |1>.
    ///
    /// Uses the tensor decomposition
    /// `gate = I - P + (P with U at the target)`, where `P` projects onto
    /// all-controls-one; both summands are plain tensor products, so the
    /// construction is linear in the number of qubits regardless of how the
    /// controls and target interleave.
    pub fn controlled(&mut self, controls: &[usize], target: usize, u: M2) -> Edge {
        assert!(target < self.n, "target out of range");
        if controls.is_empty() {
            return self.single(target, u);
        }
        let proj = self.tensor(|l| if controls.contains(&l) { PROJ1 } else { IDENT2 });
        let act = self.tensor(|l| {
            if controls.contains(&l) {
                PROJ1
            } else if l == target {
                u
            } else {
                IDENT2
            }
        });
        let id = self.identity();
        let neg_proj = self.scale(proj, W_NEG_ONE);
        let partial = self.add(id, neg_proj);
        self.add(partial, act)
    }

    /// Diagram of an arbitrary [`Gate`].
    pub fn gate(&mut self, g: &Gate) -> Edge {
        match g {
            Gate::Single { op, qubit } => {
                let m = op.matrix();
                let u = [[m[(0, 0)], m[(0, 1)]], [m[(1, 0)], m[(1, 1)]]];
                self.single(*qubit, u)
            }
            Gate::Cx { control, target } => {
                let x = x_matrix();
                self.controlled(&[*control], *target, x)
            }
            Gate::Cz { control, target } => {
                let z = [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]];
                self.controlled(&[*control], *target, z)
            }
            Gate::Swap { a, b } => {
                let x = x_matrix();
                let c1 = self.controlled(&[*a], *b, x);
                let c2 = self.controlled(&[*b], *a, x);
                let p = self.mul(c2, c1);
                self.mul(c1, p)
            }
            Gate::Mct { controls, target } => {
                let x = x_matrix();
                self.controlled(controls, *target, x)
            }
        }
    }

    /// Diagram of a whole circuit (the product of its gate matrices).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the package.
    pub fn circuit(&mut self, c: &Circuit) -> Edge {
        assert!(c.n_qubits() <= self.n, "circuit wider than package");
        let mut acc = self.identity();
        for g in c.gates() {
            let ge = self.gate(g);
            acc = self.mul(ge, acc);
            acc = self.maybe_gc(acc);
        }
        acc
    }

    /// Triggers a compacting collection when the arena exceeds the GC
    /// threshold; returns the (possibly relocated) root.
    pub fn maybe_gc(&mut self, root: Edge) -> Edge {
        if self.nodes.len() < self.gc_threshold {
            return root;
        }
        let mut roots = [root];
        self.compact(&mut roots);
        self.gc_threshold = (self.nodes.len() * 4).max(1 << 22);
        roots[0]
    }

    /// Compacts the arena, keeping only nodes reachable from `roots`, and
    /// rewrites the roots in place. Clears the operation caches.
    pub fn compact(&mut self, roots: &mut [Edge]) {
        let mut map: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        map.insert(TERMINAL, TERMINAL);
        let mut new_nodes = vec![Node {
            var: u32::MAX,
            edges: [Edge::ZERO; 4],
        }];
        // Iterative DFS copy.
        for root in roots.iter_mut() {
            let mut stack = vec![root.node];
            while let Some(id) = stack.pop() {
                if map.contains_key(&id) {
                    continue;
                }
                let node = self.nodes[id as usize];
                let pending: Vec<NodeId> = node
                    .edges
                    .iter()
                    .map(|e| e.node)
                    .filter(|n| !map.contains_key(n))
                    .collect();
                if pending.is_empty() {
                    let mut edges = node.edges;
                    for e in &mut edges {
                        e.node = map[&e.node];
                    }
                    let new_id = new_nodes.len() as NodeId;
                    new_nodes.push(Node {
                        var: node.var,
                        edges,
                    });
                    map.insert(id, new_id);
                } else {
                    stack.push(id);
                    stack.extend(pending);
                }
            }
            root.node = map[&root.node];
        }
        self.nodes = new_nodes;
        self.unique = self
            .nodes
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, n)| ((n.var, n.edges), i as NodeId))
            .collect();
        self.add_cache.clear();
        self.mul_cache.clear();
        self.adj_cache.clear();
    }

    /// Per-level node counts of a diagram: entry `l` is the number of
    /// distinct nodes at variable level `l` reachable from `e`. A
    /// compactness profile for diagnosing where a diagram grows.
    pub fn node_profile(&self, e: Edge) -> Vec<usize> {
        let mut profile = vec![0usize; self.n];
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut stack = vec![e.node];
        while let Some(id) = stack.pop() {
            if id == TERMINAL || !seen.insert(id) {
                continue;
            }
            profile[self.node(id).var as usize] += 1;
            for ch in self.node(id).edges {
                stack.push(ch.node);
            }
        }
        profile
    }

    /// Number of distinct non-terminal nodes reachable from `e`.
    pub fn node_count(&self, e: Edge) -> usize {
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut stack = vec![e.node];
        while let Some(id) = stack.pop() {
            if id == TERMINAL || !seen.insert(id) {
                continue;
            }
            for ch in self.node(id).edges {
                stack.push(ch.node);
            }
        }
        seen.len()
    }

    /// The non-zero entries of one column of the represented matrix: the
    /// amplitudes of `U |input>` as `(row, amplitude)` pairs, sorted by
    /// row.
    ///
    /// Runs in time proportional to the number of non-zero output
    /// amplitudes (one, for the permutation matrices of classical
    /// reversible circuits — which makes this a practical functional
    /// spot-check even on a 96-qubit register where dense expansion is
    /// impossible).
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^n`.
    pub fn basis_column(&self, e: Edge, input: u128) -> Vec<(u128, C64)> {
        assert!(self.n <= 128, "basis_column supports at most 128 qubits");
        assert!(
            self.n >= 128 || input < (1u128 << self.n),
            "basis state out of range"
        );
        let mut out = Vec::new();
        self.column_walk(e, input, 0, 0, C64::ONE, &mut out);
        out.sort_by_key(|(row, _)| *row);
        out
    }

    fn column_walk(
        &self,
        e: Edge,
        input: u128,
        var: usize,
        row: u128,
        acc: C64,
        out: &mut Vec<(u128, C64)>,
    ) {
        if e.is_zero() {
            return;
        }
        let w = acc * self.weights.value(e.weight);
        if e.node == TERMINAL {
            out.push((row, w));
            return;
        }
        let col_bit = (input >> (self.n - 1 - var)) & 1;
        let node = self.node(e.node);
        for r in 0..2u128 {
            self.column_walk(
                node.edges[(2 * r + col_bit) as usize],
                input,
                var + 1,
                row << 1 | r,
                w,
                out,
            );
        }
    }

    /// The trace of the represented matrix, computed on the diagram
    /// (linear in the diagram size, so it works at any register width).
    pub fn trace(&self, e: Edge) -> C64 {
        let mut memo: crate::fxhash::FxHashMap<NodeId, C64> = crate::fxhash::FxHashMap::default();
        self.trace_rec(e, self.n as u32, &mut memo)
    }

    fn trace_rec(
        &self,
        e: Edge,
        levels_below: u32,
        memo: &mut crate::fxhash::FxHashMap<NodeId, C64>,
    ) -> C64 {
        if e.is_zero() {
            return C64::ZERO;
        }
        let w = self.weights.value(e.weight);
        if e.node == TERMINAL {
            // A scalar standing for an identity-weighted block: each of
            // the remaining levels doubles the diagonal sum only when the
            // edge skipped levels — in quasi-reduced form a non-zero
            // terminal edge sits at the bottom, so levels_below is 0.
            debug_assert_eq!(levels_below, 0, "quasi-reduced form");
            return w;
        }
        let node = self.node(e.node);
        let sub = if let Some(&hit) = memo.get(&e.node) {
            hit
        } else {
            let t0 = self.trace_rec(node.edges[0], levels_below - 1, memo);
            let t1 = self.trace_rec(node.edges[3], levels_below - 1, memo);
            let s = t0 + t1;
            memo.insert(e.node, s);
            s
        };
        w * sub
    }

    /// Expands a diagram to a dense matrix (tests and small circuits only).
    pub fn to_matrix(&self, e: Edge) -> Matrix {
        let dim = 1usize << self.n;
        let mut m = Matrix::zeros(dim);
        self.fill(e, 0, 0, 0, C64::ONE, &mut m);
        m
    }

    fn fill(&self, e: Edge, var: usize, row: usize, col: usize, acc: C64, m: &mut Matrix) {
        if e.is_zero() {
            return;
        }
        let w = acc * self.weights.value(e.weight);
        if e.node == TERMINAL {
            debug_assert_eq!(var, self.n, "nonzero terminal edge above bottom");
            m[(row, col)] += w;
            return;
        }
        let node = self.node(e.node);
        for r in 0..2usize {
            for c in 0..2usize {
                self.fill(
                    node.edges[2 * r + c],
                    var + 1,
                    row << 1 | r,
                    col << 1 | c,
                    w,
                    m,
                );
            }
        }
    }
}

fn x_matrix() -> M2 {
    [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::SingleOp;

    fn check_gate_matches_dense(g: Gate, n: usize) {
        let mut pkg = Qmdd::new(n);
        let e = pkg.gate(&g);
        let dd = pkg.to_matrix(e);
        let dense = g.to_matrix(n);
        assert!(dd.approx_eq(&dense), "gate {g} mismatch\nDD:\n{dd}\ndense:\n{dense}");
    }

    #[test]
    fn single_qubit_gates_match_dense() {
        for op in qsyn_gate::SINGLE_OPS {
            for q in 0..3 {
                check_gate_matches_dense(Gate::single(op, q), 3);
            }
        }
    }

    #[test]
    fn cnot_both_orientations_match_dense() {
        check_gate_matches_dense(Gate::cx(0, 1), 2);
        check_gate_matches_dense(Gate::cx(1, 0), 2);
        check_gate_matches_dense(Gate::cx(0, 2), 3);
        check_gate_matches_dense(Gate::cx(2, 0), 3);
    }

    #[test]
    fn control_below_target_works() {
        // The tensor-sum construction must not care about level order.
        check_gate_matches_dense(Gate::cx(2, 0), 4);
        check_gate_matches_dense(Gate::mct(vec![1, 3], 0), 4);
        check_gate_matches_dense(Gate::mct(vec![0, 3], 1), 4);
    }

    #[test]
    fn cz_swap_toffoli_match_dense() {
        check_gate_matches_dense(Gate::cz(0, 1), 2);
        check_gate_matches_dense(Gate::cz(1, 0), 3);
        check_gate_matches_dense(Gate::swap(0, 1), 2);
        check_gate_matches_dense(Gate::swap(0, 2), 3);
        check_gate_matches_dense(Gate::toffoli(0, 1, 2), 3);
        check_gate_matches_dense(Gate::toffoli(1, 2, 0), 3);
        check_gate_matches_dense(Gate::mct(vec![0, 1, 2], 3), 4);
    }

    #[test]
    fn fig1_cnot_qmdd_structure() {
        // Paper Fig. 1: CNOT with control x0, target x1 has a root whose
        // U01 and U10 quadrants are zero, U00 is the identity sub-matrix,
        // and U11 is the X sub-matrix; three non-terminal vertices total.
        let mut pkg = Qmdd::new(2);
        let e = pkg.gate(&Gate::cx(0, 1));
        assert_eq!(pkg.var_of(e), 0);
        let ch = pkg.children(e);
        assert!(ch[1].is_zero() && ch[2].is_zero());
        assert!(!ch[0].is_zero() && !ch[3].is_zero());
        assert_ne!(ch[0].node, ch[3].node, "identity and X submatrices differ");
        assert_eq!(pkg.node_count(e), 3);
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut pkg = Qmdd::new(3);
        let id = pkg.identity();
        let h = pkg.gate(&Gate::h(1));
        let hi = pkg.mul(h, id);
        let ih = pkg.mul(id, h);
        assert_eq!(hi, h);
        assert_eq!(ih, h);
    }

    #[test]
    fn add_commutes_and_scales() {
        let mut pkg = Qmdd::new(2);
        let a = pkg.gate(&Gate::h(0));
        let b = pkg.gate(&Gate::cx(0, 1));
        let ab = pkg.add(a, b);
        let ba = pkg.add(b, a);
        assert_eq!(ab, ba);
        let da = pkg.to_matrix(a);
        let db = pkg.to_matrix(b);
        let mut expected = Matrix::zeros(4);
        for i in 0..4 {
            for j in 0..4 {
                expected[(i, j)] = da[(i, j)] + db[(i, j)];
            }
        }
        assert!(pkg.to_matrix(ab).approx_eq(&expected));
    }

    #[test]
    fn mul_matches_dense_product() {
        let mut pkg = Qmdd::new(3);
        let mut c1 = Circuit::new(3);
        c1.push(Gate::h(0));
        c1.push(Gate::cx(0, 1));
        c1.push(Gate::t(2));
        let mut c2 = Circuit::new(3);
        c2.push(Gate::cx(1, 2));
        c2.push(Gate::single(SingleOp::Sdg, 0));
        let e1 = pkg.circuit(&c1);
        let e2 = pkg.circuit(&c2);
        let prod = pkg.mul(e2, e1);
        let dense = c2.to_matrix().mul(&c1.to_matrix());
        assert!(pkg.to_matrix(prod).approx_eq(&dense));
    }

    #[test]
    fn canonicity_same_function_same_edge() {
        // SWAP as a native gate vs. as three CNOTs: identical root edges.
        let mut pkg = Qmdd::new(3);
        let mut a = Circuit::new(3);
        a.push(Gate::swap(1, 2));
        let mut b = Circuit::new(3);
        b.push(Gate::cx(1, 2));
        b.push(Gate::cx(2, 1));
        b.push(Gate::cx(1, 2));
        assert_eq!(pkg.circuit(&a), pkg.circuit(&b));
    }

    #[test]
    fn distinct_functions_distinct_edges() {
        let mut pkg = Qmdd::new(2);
        let mut a = Circuit::new(2);
        a.push(Gate::cx(0, 1));
        let mut b = Circuit::new(2);
        b.push(Gate::cx(1, 0));
        assert_ne!(pkg.circuit(&a), pkg.circuit(&b));
    }

    #[test]
    fn adjoint_matches_dense() {
        let mut pkg = Qmdd::new(2);
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::t(0));
        c.push(Gate::cx(0, 1));
        let e = pkg.circuit(&c);
        let adj = pkg.adjoint(e);
        assert!(pkg.to_matrix(adj).approx_eq(&c.to_matrix().adjoint()));
        // U * U^dagger = I
        let prod = pkg.mul(e, adj);
        let id = pkg.identity();
        assert_eq!(prod, id);
    }

    #[test]
    fn hadamard_weight_normalization() {
        // H's QMDD: all entries 1/sqrt(2); normalized node has weights
        // 1,1,1,-1 and the root weight carries the scale.
        let mut pkg = Qmdd::new(1);
        let e = pkg.gate(&Gate::h(0));
        let w = pkg.weight_value(e.weight);
        assert!((w.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        let ch = pkg.children(e);
        assert_eq!(ch[0].weight, W_ONE);
    }

    #[test]
    fn compact_preserves_semantics() {
        let mut pkg = Qmdd::new(3);
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::tdg(2));
        let before = pkg.circuit(&c);
        let dense = pkg.to_matrix(before);
        let mut roots = [before];
        pkg.compact(&mut roots);
        assert!(pkg.to_matrix(roots[0]).approx_eq(&dense));
        // After compaction the arena contains only reachable nodes.
        assert_eq!(pkg.node_count_total(), pkg.node_count(roots[0]) + 1);
        // And further operations still work.
        let h = pkg.gate(&Gate::h(0));
        let _ = pkg.mul(h, roots[0]);
    }

    #[test]
    fn basis_column_matches_dense() {
        let mut pkg = Qmdd::new(3);
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::toffoli(0, 1, 2));
        let e = pkg.circuit(&c);
        let dense = pkg.to_matrix(e);
        for input in 0..8u64 {
            let col = pkg.basis_column(e, input as u128);
            let mut nonzero = 0;
            for (row, amp) in &col {
                assert!(dense[(*row as usize, input as usize)].approx_eq(*amp));
                nonzero += 1;
            }
            for row in 0..8usize {
                if !dense[(row, input as usize)].is_zero() {
                    nonzero -= 1;
                }
            }
            assert_eq!(nonzero, 0, "column {input} entry count");
        }
    }

    #[test]
    fn basis_column_on_permutation_is_single_entry() {
        let mut pkg = Qmdd::new(4);
        let mut c = Circuit::new(4);
        c.push(Gate::mct(vec![0, 1, 2], 3));
        c.push(Gate::cx(3, 0));
        let e = pkg.circuit(&c);
        for input in 0..16u64 {
            let col = pkg.basis_column(e, input as u128);
            assert_eq!(col.len(), 1, "permutation column {input}");
            assert_eq!(col[0].0, c.permute_basis(input) as u128);
            assert!(col[0].1.is_one());
        }
    }

    #[test]
    fn node_profile_counts_levels() {
        let mut pkg = Qmdd::new(3);
        let id = pkg.identity();
        assert_eq!(pkg.node_profile(id), vec![1, 1, 1]);
        let e = pkg.gate(&Gate::cx(0, 2));
        let profile = pkg.node_profile(e);
        assert_eq!(profile.iter().sum::<usize>(), pkg.node_count(e));
        assert_eq!(profile[0], 1, "one root node");
    }

    #[test]
    fn automatic_gc_preserves_circuit_building() {
        // Force collections every few nodes and rebuild a circuit whose
        // result is known; the fold in `circuit` must survive relocation.
        let mut pkg = Qmdd::new(4);
        pkg.set_gc_threshold(8);
        let mut c = Circuit::new(4);
        for k in 0..6 {
            c.push(Gate::h(k % 4));
            c.push(Gate::cx(k % 4, (k + 1) % 4));
            c.push(Gate::t((k + 2) % 4));
        }
        let e = pkg.circuit(&c);
        let mut clean = Qmdd::new(4);
        let expected = clean.circuit(&c);
        assert!(pkg.to_matrix(e).approx_eq(&clean.to_matrix(expected)));
    }

    #[test]
    fn adjoint_is_an_involution() {
        let mut pkg = Qmdd::new(2);
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::t(1));
        c.push(Gate::cx(0, 1));
        let e = pkg.circuit(&c);
        let back = pkg.adjoint(e);
        let again = pkg.adjoint(back);
        assert_eq!(again, e, "adjoint twice is the identity map");
    }

    #[test]
    fn identity_diagram_is_linear_size() {
        for n in [1usize, 8, 64, 96] {
            let mut pkg = Qmdd::new(n);
            let id = pkg.identity();
            assert_eq!(pkg.node_count(id), n, "one shared node per level");
        }
    }

    #[test]
    fn weight_table_stays_bounded_on_clifford_t() {
        // Thousands of multiplications over the Clifford+T value ring must
        // not mint unbounded fresh weights (the snapping property).
        let mut pkg = Qmdd::new(3);
        let mut c = Circuit::new(3);
        let mut s = 7u64;
        for _ in 0..600 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            match s % 4 {
                0 => c.push(Gate::h((s % 3) as usize)),
                1 => c.push(Gate::t((s % 3) as usize)),
                2 => c.push(Gate::tdg((s % 3) as usize)),
                _ => {
                    let a = (s % 3) as usize;
                    let b = ((s >> 8) % 3) as usize;
                    if a != b {
                        c.push(Gate::cx(a, b));
                    }
                }
            }
        }
        let e = pkg.circuit(&c);
        // The table grows with the circuit's true amplitude ring (new
        // denominators appear with depth), but snapping must keep the
        // numerics exact: after 600 gates the product is still exactly
        // unitary in the canonical representation.
        let adj = pkg.adjoint(e);
        let prod = pkg.mul(e, adj);
        let id = pkg.identity();
        assert_eq!(prod, id, "unitarity lost after deep product");
    }

    #[test]
    fn long_product_stays_exact() {
        // T applied eight times is the identity; snapping must keep this
        // exact through the weight table.
        let mut pkg = Qmdd::new(1);
        let mut c = Circuit::new(1);
        for _ in 0..8 {
            c.push(Gate::t(0));
        }
        let e = pkg.circuit(&c);
        let id = pkg.identity();
        assert_eq!(e, id);
    }
}
