//! Quantum Multiple-valued Decision Diagrams (QMDD) with formal
//! equivalence checking.
//!
//! Implements the data structure of Miller & Thornton (ISMVL 2006) used by
//! the paper's compiler for built-in formal verification: a canonical,
//! hash-consed DAG representation of the `2^n x 2^n` unitary of a quantum
//! circuit. Because the representation is canonical for a fixed variable
//! order, two circuits realize the same unitary exactly when their root
//! edges coincide.
//!
//! # Examples
//!
//! ```
//! use qsyn_circuit::Circuit;
//! use qsyn_gate::Gate;
//! use qsyn_qmdd::circuits_equal;
//!
//! // CNOT reversal identity (paper Fig. 6).
//! let mut fwd = Circuit::new(2);
//! fwd.push(Gate::cx(1, 0));
//! let mut rev = Circuit::new(2);
//! for g in [Gate::h(0), Gate::h(1), Gate::cx(0, 1), Gate::h(0), Gate::h(1)] {
//!     rev.push(g);
//! }
//! assert!(circuits_equal(&fwd, &rev));
//! ```

#![warn(missing_docs)]

mod ctable;
mod dot;
mod equiv;
mod fxhash;
mod package;
mod state;

pub use ctable::{WeightId, WeightTable, W_NEG_ONE, W_ONE, W_ZERO};
pub use equiv::{
    build_circuit_qmdd, circuits_equal, equivalent, equivalent_miter,
    equivalent_miter_with_gc_threshold, equivalent_with_ancillas, equivalent_with_gc_threshold,
    miter_support, process_fidelity, try_equivalent, try_equivalent_miter,
    try_equivalent_miter_batched, try_equivalent_miter_on, try_equivalent_miter_on_batched,
    EquivBudget, EquivBudgetError, EquivReport, DEFAULT_MITER_BATCH,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use package::{CacheStats, Edge, NodeId, Qmdd, M2, TERMINAL};
pub use state::Simulator;
