//! Canonical complex-weight table.
//!
//! QMDD canonicity requires that numerically equal edge weights are
//! represented by the *same* identifier, so that node hashing and pointer
//! comparison see them as identical. The table interns complex values with a
//! tolerance: a lookup within [`qsyn_gate::EPSILON`] of a stored value snaps
//! to that value, which also prevents floating-point drift from accumulating
//! across long gate sequences.

use crate::fxhash::FxHashMap;
use qsyn_gate::{C64, EPSILON};

/// Identifier of an interned complex weight.
pub type WeightId = u32;

/// The interned weight `0`.
pub const W_ZERO: WeightId = 0;
/// The interned weight `1`.
pub const W_ONE: WeightId = 1;
/// The interned weight `-1`.
pub const W_NEG_ONE: WeightId = 2;

const BUCKET: f64 = 1.0 / (4.0 * EPSILON);

/// Interning table of complex edge weights with tolerance-based lookup.
#[derive(Debug, Default)]
pub struct WeightTable {
    values: Vec<C64>,
    buckets: FxHashMap<(i64, i64), Vec<WeightId>>,
}

impl WeightTable {
    /// Creates a table pre-seeded with the distinguished weights
    /// [`W_ZERO`], [`W_ONE`], and [`W_NEG_ONE`].
    pub fn new() -> Self {
        let mut t = WeightTable {
            values: Vec::new(),
            buckets: FxHashMap::default(),
        };
        let zero = t.intern(C64::ZERO);
        let one = t.intern(C64::ONE);
        let neg = t.intern(-C64::ONE);
        debug_assert_eq!(zero, W_ZERO);
        debug_assert_eq!(one, W_ONE);
        debug_assert_eq!(neg, W_NEG_ONE);
        t
    }

    fn key(v: C64) -> (i64, i64) {
        ((v.re * BUCKET).round() as i64, (v.im * BUCKET).round() as i64)
    }

    /// Interns `v`, returning the id of an existing value within tolerance
    /// or a fresh id.
    pub fn intern(&mut self, v: C64) -> WeightId {
        let (kr, ki) = Self::key(v);
        for dr in -1..=1i64 {
            for di in -1..=1i64 {
                if let Some(ids) = self.buckets.get(&(kr + dr, ki + di)) {
                    for &id in ids {
                        if self.values[id as usize].approx_eq(v) {
                            return id;
                        }
                    }
                }
            }
        }
        let id = self.values.len() as WeightId;
        self.values.push(v);
        self.buckets.entry((kr, ki)).or_default().push(id);
        id
    }

    /// The canonical value for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    #[inline]
    pub fn value(&self, id: WeightId) -> C64 {
        self.values[id as usize]
    }

    /// Number of distinct interned weights.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds only the pre-seeded weights.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 3
    }

    /// Interns the product of two weights.
    #[inline]
    pub fn mul(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a == W_ZERO || b == W_ZERO {
            return W_ZERO;
        }
        if a == W_ONE {
            return b;
        }
        if b == W_ONE {
            return a;
        }
        let v = self.value(a) * self.value(b);
        self.intern(v)
    }

    /// Interns the sum of two weights.
    #[inline]
    pub fn add(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a == W_ZERO {
            return b;
        }
        if b == W_ZERO {
            return a;
        }
        let v = self.value(a) + self.value(b);
        self.intern(v)
    }

    /// Interns the quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when dividing by the zero weight.
    #[inline]
    pub fn div(&mut self, a: WeightId, b: WeightId) -> WeightId {
        debug_assert_ne!(b, W_ZERO, "division by zero weight");
        if a == W_ZERO {
            return W_ZERO;
        }
        if b == W_ONE {
            return a;
        }
        if a == b {
            return W_ONE;
        }
        let v = self.value(a) / self.value(b);
        self.intern(v)
    }

    /// Interns the complex conjugate of `a`.
    #[inline]
    pub fn conj(&mut self, a: WeightId) -> WeightId {
        if a == W_ZERO || a == W_ONE || a == W_NEG_ONE {
            return a; // real distinguished weights are self-conjugate
        }
        let v = self.value(a).conj();
        self.intern(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable() {
        let t = WeightTable::new();
        assert!(t.value(W_ZERO).is_zero());
        assert!(t.value(W_ONE).is_one());
        assert!(t.value(W_NEG_ONE).approx_eq(-C64::ONE));
    }

    #[test]
    fn interning_dedupes_within_tolerance() {
        let mut t = WeightTable::new();
        let a = t.intern(C64::new(0.5, 0.25));
        let b = t.intern(C64::new(0.5 + 1e-12, 0.25 - 1e-12));
        assert_eq!(a, b);
        let c = t.intern(C64::new(0.5 + 1e-6, 0.25));
        assert_ne!(a, c);
    }

    #[test]
    fn snapping_prevents_drift() {
        let mut t = WeightTable::new();
        let h = t.intern(C64::FRAC_1_SQRT_2);
        // Repeatedly nudge; every lookup snaps back to the canonical value.
        let mut v = t.value(h);
        for _ in 0..1000 {
            v = C64::new(v.re + 1e-13, v.im);
            let id = t.intern(v);
            assert_eq!(id, h);
            v = t.value(id);
        }
    }

    #[test]
    fn arithmetic_shortcuts() {
        let mut t = WeightTable::new();
        let i = t.intern(C64::I);
        assert_eq!(t.mul(W_ZERO, i), W_ZERO);
        assert_eq!(t.mul(W_ONE, i), i);
        assert_eq!(t.mul(i, W_ONE), i);
        assert_eq!(t.add(W_ZERO, i), i);
        assert_eq!(t.div(i, i), W_ONE);
        let minus_one = t.mul(i, i);
        assert_eq!(minus_one, W_NEG_ONE);
    }

    #[test]
    fn conj_of_i() {
        let mut t = WeightTable::new();
        let i = t.intern(C64::I);
        let ci = t.conj(i);
        assert!(t.value(ci).approx_eq(-C64::I));
        assert_eq!(t.conj(W_ONE), W_ONE);
    }

    #[test]
    fn boundary_values_near_bucket_edges() {
        let mut t = WeightTable::new();
        // A value that rounds into a neighboring bucket must still be found.
        let eps = qsyn_gate::EPSILON;
        let base = t.intern(C64::new(2.0 * eps, 0.0));
        let near = t.intern(C64::new(2.0 * eps + 0.9 * eps, 0.0));
        assert_eq!(base, near);
    }
}
