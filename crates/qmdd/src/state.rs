//! Decision-diagram state-vector simulation.
//!
//! A quantum state over `n` qubits is represented as the rank-one matrix
//! `|psi><0...0|` inside the ordinary QMDD package, so gate application is
//! just diagram multiplication and structured states (GHZ, basis states,
//! product states) stay polynomially small far beyond the reach of dense
//! `2^n` arrays. This is the standard trick for reusing a matrix-DD engine
//! as a simulator.

use crate::fxhash::FxHashMap;
use crate::package::{Edge, Qmdd, TERMINAL};
use qsyn_circuit::Circuit;
use qsyn_gate::{C64, Gate};
use std::cell::RefCell;

/// A decision-diagram quantum state simulator.
///
/// # Examples
///
/// ```
/// use qsyn_qmdd::Simulator;
/// use qsyn_gate::Gate;
///
/// // A 40-qubit GHZ state is far beyond dense simulation but trivial here.
/// let mut sim = Simulator::new(40);
/// sim.apply(&Gate::h(0));
/// for q in 1..40 {
///     sim.apply(&Gate::cx(q - 1, q));
/// }
/// let a0 = sim.amplitude(0);
/// let a1 = sim.amplitude((1u128 << 40) - 1);
/// assert!((a0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
/// assert!((a1.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct Simulator {
    pkg: Qmdd,
    state: Edge,
    // Scratch memo buffers reused across queries instead of reallocating
    // a fresh map per call (`apply`-heavy loops interleave queries, and the
    // maps reach thousands of entries on wide registers).
    prob_memo: RefCell<FxHashMap<(u32, bool), f64>>,
    norm_memo: RefCell<FxHashMap<u32, f64>>,
}

impl Simulator {
    /// Creates a simulator in the all-zeros basis state `|0...0>`.
    pub fn new(n: usize) -> Self {
        let mut pkg = Qmdd::new(n);
        // |0..0><0..0| as a tensor of |0><0| factors.
        let zero_proj = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ZERO]];
        let state = pkg.tensor(|_| zero_proj);
        Simulator {
            pkg,
            state,
            prob_memo: RefCell::new(FxHashMap::default()),
            norm_memo: RefCell::new(FxHashMap::default()),
        }
    }

    /// Creates a simulator initialized to an arbitrary basis state.
    ///
    /// # Panics
    ///
    /// Panics if `basis` does not fit in `n` qubits.
    pub fn with_basis_state(n: usize, basis: u128) -> Self {
        assert!(n >= 128 || basis < (1u128 << n), "basis state out of range");
        let mut sim = Simulator::new(n);
        for q in 0..n {
            if basis >> (n - 1 - q) & 1 == 1 {
                sim.apply(&Gate::x(q));
            }
        }
        sim
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.pkg.n_qubits()
    }

    /// Applies one gate to the state.
    ///
    /// The hot path reuses the package's scratch buffers (control masks in
    /// gate construction, relocation maps in collection) — applying a long
    /// circuit performs no per-gate scratch allocation.
    pub fn apply(&mut self, gate: &Gate) {
        let g = self.pkg.gate(gate);
        self.state = self.pkg.mul(g, self.state);
        self.state = self.pkg.maybe_gc(self.state);
    }

    /// Applies a whole circuit in execution order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the simulator.
    pub fn run(&mut self, circuit: &Circuit) {
        assert!(circuit.n_qubits() <= self.n_qubits(), "circuit too wide");
        for g in circuit.gates() {
            self.apply(g);
        }
    }

    /// The amplitude `<basis|psi>`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` does not fit in the register.
    pub fn amplitude(&self, basis: u128) -> C64 {
        let n = self.n_qubits();
        assert!(n >= 128 || basis < (1u128 << n), "basis state out of range");
        // Walk the row path at column 0.
        let mut e = self.state;
        let mut acc = C64::ONE;
        for var in 0..n {
            if e.is_zero() {
                return C64::ZERO;
            }
            acc *= self.pkg.weight_value(e.weight);
            let r = (basis >> (n - 1 - var) & 1) as usize;
            e = self.pkg.children(e)[2 * r]; // column bit 0
        }
        if e.is_zero() {
            C64::ZERO
        } else {
            debug_assert_eq!(e.node, TERMINAL);
            acc * self.pkg.weight_value(e.weight)
        }
    }

    /// Probability of measuring `qubit` as `|1>`, computed by summing
    /// `|amplitude|^2` over the diagram (no collapse).
    pub fn probability_one(&self, qubit: usize) -> f64 {
        assert!(qubit < self.n_qubits(), "qubit out of range");
        let mut memo = self.prob_memo.borrow_mut();
        memo.clear();
        self.prob_walk(self.state, 0, qubit, false, &mut memo)
    }

    fn prob_walk(
        &self,
        e: Edge,
        var: usize,
        qubit: usize,
        took_one: bool,
        memo: &mut crate::fxhash::FxHashMap<(u32, bool), f64>,
    ) -> f64 {
        if e.is_zero() {
            return 0.0;
        }
        let w2 = self.pkg.weight_value(e.weight).norm_sqr();
        if e.node == TERMINAL {
            return if took_one { w2 } else { 0.0 };
        }
        // The weight-stripped sub-sum depends only on (node, took_one):
        // above the measured qubit took_one is constantly false, at the
        // qubit the incoming flag is ignored, and below it it is fixed.
        let key = (e.node, took_one);
        if let Some(&sub) = memo.get(&key) {
            return w2 * sub;
        }
        let ch = self.pkg.children(e);
        let mut sub = 0.0;
        for r in 0..2usize {
            let next_took = if var == qubit { r == 1 } else { took_one };
            sub += self.prob_walk(ch[2 * r], var + 1, qubit, next_took, memo);
        }
        memo.insert(key, sub);
        w2 * sub
    }

    /// Current number of nodes in the state diagram (a compactness
    /// diagnostic).
    pub fn state_nodes(&self) -> usize {
        self.pkg.node_count(self.state)
    }

    /// Fidelity `|<psi|phi>|^2` between this simulator's state `|psi>` and
    /// the state `|phi>` prepared by running `circuit` from `|0...0>`,
    /// computed entirely on diagrams (any register width).
    ///
    /// # Panics
    ///
    /// Panics if the circuit width differs from the simulator width.
    pub fn state_fidelity_with(&mut self, circuit: &Circuit) -> f64 {
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits(),
            "width mismatch for state fidelity"
        );
        // Build |phi><0..0| in the same package.
        let zero_proj = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ZERO]];
        let mut phi = self.pkg.tensor(|_| zero_proj);
        for g in circuit.gates() {
            let ge = self.pkg.gate(g);
            phi = self.pkg.mul(ge, phi);
        }
        // (|psi><0|)† |phi><0| = |0><psi| |phi><0| = <psi|phi> |0><0|;
        // its trace is exactly the inner product.
        let psi_dag = self.pkg.adjoint(self.state);
        let prod = self.pkg.mul(psi_dag, phi);
        let inner = self.pkg.trace(prod);
        inner.norm_sqr()
    }

    /// Samples one complete measurement outcome (all qubits, computational
    /// basis) without collapsing the stored state. `uniform` must return
    /// numbers in `[0, 1)` — pass a closure over your RNG of choice.
    ///
    /// Walks the diagram once, choosing each qubit's bit with the correct
    /// conditional probability (chain rule), so a sample costs `O(n ·
    /// branch-norm evaluations)` rather than anything exponential.
    pub fn sample(&self, mut uniform: impl FnMut() -> f64) -> u128 {
        let n = self.n_qubits();
        let mut memo = self.norm_memo.borrow_mut();
        memo.clear();
        let mut outcome = 0u128;
        let mut e = self.state;
        for _ in 0..n {
            debug_assert!(!e.is_zero(), "state must be normalized");
            let w2 = self.pkg.weight_value(e.weight).norm_sqr();
            let ch = self.pkg.children(e);
            let p0 = self.branch_norm(ch[0], &mut memo);
            let p1 = self.branch_norm(ch[2], &mut memo);
            let total = (p0 + p1).max(f64::MIN_POSITIVE);
            let _ = w2; // cancels in the conditional probability
            let bit = if uniform() < p1 / total { 1u128 } else { 0 };
            outcome = outcome << 1 | bit;
            e = ch[if bit == 1 { 2 } else { 0 }];
        }
        outcome
    }

    /// Squared norm of the sub-vector hanging off an edge (column 0 only),
    /// including the edge weight.
    fn branch_norm(&self, e: Edge, memo: &mut crate::fxhash::FxHashMap<u32, f64>) -> f64 {
        if e.is_zero() {
            return 0.0;
        }
        let w2 = self.pkg.weight_value(e.weight).norm_sqr();
        if e.node == TERMINAL {
            return w2;
        }
        let sub = if let Some(&hit) = memo.get(&e.node) {
            hit
        } else {
            let ch = self.pkg.children(e);
            let s = self.branch_norm(ch[0], memo) + self.branch_norm(ch[2], memo);
            memo.insert(e.node, s);
            s
        };
        w2 * sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: amplitudes from a plain state-vector run.
    fn dense_amplitudes(c: &Circuit) -> Vec<C64> {
        let mut state = vec![C64::ZERO; 1 << c.n_qubits()];
        state[0] = C64::ONE;
        c.apply_to_state(&mut state);
        state
    }

    fn random_circuit(n: usize, len: usize, mut seed: u64) -> Circuit {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut c = Circuit::new(n);
        for _ in 0..len {
            match next() % 5 {
                0 => c.push(Gate::h((next() as usize) % n)),
                1 => c.push(Gate::t((next() as usize) % n)),
                2 => c.push(Gate::x((next() as usize) % n)),
                _ => {
                    let a = (next() as usize) % n;
                    let b = (next() as usize) % n;
                    if a != b {
                        c.push(Gate::cx(a, b));
                    }
                }
            }
        }
        c
    }

    #[test]
    fn initial_state_is_all_zeros() {
        let sim = Simulator::new(3);
        assert!(sim.amplitude(0).is_one());
        for b in 1..8u128 {
            assert!(sim.amplitude(b).is_zero());
        }
    }

    #[test]
    fn basis_state_initialization() {
        let sim = Simulator::with_basis_state(4, 0b1010);
        assert!(sim.amplitude(0b1010).is_one());
        assert!(sim.amplitude(0b0000).is_zero());
        assert!(sim.amplitude(0b1011).is_zero());
    }

    #[test]
    fn matches_dense_simulation_on_random_circuits() {
        for seed in [3u64, 17, 99] {
            let c = random_circuit(4, 25, seed);
            let mut sim = Simulator::new(4);
            sim.run(&c);
            let dense = dense_amplitudes(&c);
            for (b, expected) in dense.iter().enumerate() {
                assert!(
                    sim.amplitude(b as u128).approx_eq(*expected),
                    "seed {seed}, basis {b}"
                );
            }
        }
    }

    #[test]
    fn bell_pair_probabilities() {
        let mut sim = Simulator::new(2);
        sim.apply(&Gate::h(0));
        sim.apply(&Gate::cx(0, 1));
        assert!((sim.probability_one(0) - 0.5).abs() < 1e-12);
        assert!((sim.probability_one(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_one_matches_dense() {
        let c = random_circuit(4, 30, 123);
        let mut sim = Simulator::new(4);
        sim.run(&c);
        let dense = dense_amplitudes(&c);
        for q in 0..4usize {
            let expected: f64 = dense
                .iter()
                .enumerate()
                .filter(|(b, _)| b >> (3 - q) & 1 == 1)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert!(
                (sim.probability_one(q) - expected).abs() < 1e-9,
                "qubit {q}: {} vs {expected}",
                sim.probability_one(q)
            );
        }
    }

    #[test]
    fn wide_ghz_stays_tiny() {
        let n = 64;
        let mut sim = Simulator::new(n);
        sim.apply(&Gate::h(0));
        for q in 1..n {
            sim.apply(&Gate::cx(q - 1, q));
        }
        // Linear-size diagram for an exponentially large state.
        assert!(sim.state_nodes() <= 2 * n);
        let all_ones = (1u128 << n) - 1;
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert!((sim.amplitude(0).abs() - h).abs() < 1e-9);
        assert!((sim.amplitude(all_ones).abs() - h).abs() < 1e-9);
        assert!(sim.amplitude(1).is_zero());
        assert!((sim.probability_one(n / 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deterministic_probabilities_on_classical_circuit() {
        let mut sim = Simulator::new(3);
        sim.apply(&Gate::x(0));
        sim.apply(&Gate::cx(0, 2));
        assert!((sim.probability_one(0) - 1.0).abs() < 1e-12);
        assert!((sim.probability_one(1) - 0.0).abs() < 1e-12);
        assert!((sim.probability_one(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn state_fidelity_basics() {
        // GHZ vs itself: 1. GHZ vs |000>: 1/2. GHZ vs |100>: 0.
        let ghz = {
            let mut c = Circuit::new(3);
            c.push(Gate::h(0));
            c.push(Gate::cx(0, 1));
            c.push(Gate::cx(1, 2));
            c
        };
        let mut sim = Simulator::new(3);
        sim.run(&ghz);
        assert!((sim.state_fidelity_with(&ghz) - 1.0).abs() < 1e-9);
        assert!((sim.state_fidelity_with(&Circuit::new(3)) - 0.5).abs() < 1e-9);
        let mut flipped = Circuit::new(3);
        flipped.push(Gate::x(0));
        assert!(sim.state_fidelity_with(&flipped) < 1e-12);
    }

    #[test]
    fn state_fidelity_on_wide_register() {
        let n = 48;
        let mut ghz = Circuit::new(n);
        ghz.push(Gate::h(0));
        for q in 1..n {
            ghz.push(Gate::cx(q - 1, q));
        }
        let mut sim = Simulator::new(n);
        sim.run(&ghz);
        assert!((sim.state_fidelity_with(&ghz) - 1.0).abs() < 1e-9);
        // One stray phase on the |1...1> branch halves nothing but shifts
        // the overlap: |1/2 + e^{i pi/4}/2|^2.
        let mut tweaked = ghz.clone();
        tweaked.push(Gate::t(n - 1));
        let expect = {
            let t = qsyn_gate::C64::cis(std::f64::consts::FRAC_PI_4);
            ((qsyn_gate::C64::ONE + t) * 0.5).norm_sqr()
        };
        assert!((sim.state_fidelity_with(&tweaked) - expect).abs() < 1e-9);
    }

    #[test]
    fn sampling_ghz_gives_only_the_two_branches() {
        let mut sim = Simulator::new(10);
        sim.apply(&Gate::h(0));
        for q in 1..10 {
            sim.apply(&Gate::cx(q - 1, q));
        }
        let mut seed = 0x8badf00du64;
        let mut uniform = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let all_ones = (1u128 << 10) - 1;
        let mut ones = 0usize;
        for _ in 0..200 {
            let s = sim.sample(&mut uniform);
            assert!(s == 0 || s == all_ones, "GHZ sample {s:b}");
            if s == all_ones {
                ones += 1;
            }
        }
        // Roughly balanced (very loose bound; the distribution is 50/50).
        assert!(ones > 50 && ones < 150, "ones = {ones}");
    }

    #[test]
    fn sampling_matches_deterministic_states() {
        let mut sim = Simulator::with_basis_state(4, 0b1010);
        sim.apply(&Gate::cx(0, 3)); // q0=1 -> flip q3
        for _ in 0..10 {
            assert_eq!(sim.sample(|| 0.4999), 0b1011);
        }
    }

    #[test]
    fn sampling_respects_biased_amplitudes() {
        // T H |0> has P(1) = 1/2; but S (diag) after H leaves P unchanged;
        // check a 1-qubit superposition frequency.
        let mut sim = Simulator::new(1);
        sim.apply(&Gate::h(0));
        let mut k = 0u64;
        let mut uniform = move || {
            k += 1;
            (k % 100) as f64 / 100.0
        };
        let ones: usize = (0..100).map(|_| sim.sample(&mut uniform) as usize).sum();
        assert_eq!(ones, 50, "deterministic sweep hits exactly P(1)=0.5");
    }

    #[test]
    fn run_rejects_wider_circuit() {
        let mut sim = Simulator::new(2);
        let c = Circuit::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(&c)));
        assert!(result.is_err());
    }
}
