//! A small, fast, non-cryptographic hasher for the QMDD unique and compute
//! tables.
//!
//! The default `SipHash` is needlessly slow for the hot hash-consing path of
//! the decision-diagram package; this is the classic Fx multiply-xor mix
//! (as used by rustc), implemented locally to keep the workspace free of
//! external dependencies.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; not DoS-resistant, which is fine for internal
/// compiler tables keyed by dense integer tuples.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_hash_differently() {
        let mut a = FxHasher::default();
        a.write_u64(1);
        let mut b = FxHasher::default();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 7)), Some(&i));
        }
    }

    #[test]
    fn write_bytes_consistent() {
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }
}
