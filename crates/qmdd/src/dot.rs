//! Graphviz DOT export of QMDD structure — renders diagrams like the
//! paper's Fig. 1 (the CNOT QMDD).

use crate::fxhash::FxHashSet;
use crate::package::{Edge, Qmdd, TERMINAL};
use std::fmt::Write as _;

impl Qmdd {
    /// Renders the diagram rooted at `root` as Graphviz DOT.
    ///
    /// Non-terminal vertices are labeled with their variable (`x0` on top,
    /// as in the paper); the four outgoing edge ports are ordered
    /// `U00, U01, U10, U11` left to right, with non-unit weights printed on
    /// the edge. Zero edges are drawn to a shared `0` sink so quadrant
    /// structure stays visible.
    pub fn to_dot(&self, root: Edge) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph qmdd {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=circle];");
        let _ = writeln!(out, "  t [label=\"1\", shape=box];");
        let _ = writeln!(out, "  z [label=\"0\", shape=box];");

        // Root entry arrow with its weight.
        let rw = self.weight_value(root.weight);
        let _ = writeln!(out, "  entry [shape=point];");
        if root.is_zero() {
            let _ = writeln!(out, "  entry -> z;");
            let _ = writeln!(out, "}}");
            return out;
        }
        let _ = writeln!(
            out,
            "  entry -> n{} [label=\"{rw}\"];",
            root.node
        );

        let mut names: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![root.node];
        while let Some(id) = stack.pop() {
            if id == TERMINAL || !names.insert(id) {
                continue;
            }
            let var = self.var_of(Edge {
                node: id,
                weight: crate::ctable::W_ONE,
            });
            let _ = writeln!(out, "  n{id} [label=\"x{var}\"];");
            let children = self.children(Edge {
                node: id,
                weight: crate::ctable::W_ONE,
            });
            for (quadrant, ch) in children.iter().enumerate() {
                let label = format!("U{}{}", quadrant / 2, quadrant % 2);
                if ch.is_zero() {
                    let _ = writeln!(out, "  n{id} -> z [label=\"{label}\", style=dashed];");
                    continue;
                }
                let w = self.weight_value(ch.weight);
                let wlabel = if w.is_one() {
                    label
                } else {
                    format!("{label} ({w})")
                };
                if ch.node == TERMINAL {
                    let _ = writeln!(out, "  n{id} -> t [label=\"{wlabel}\"];");
                } else {
                    let _ = writeln!(out, "  n{id} -> n{} [label=\"{wlabel}\"];", ch.node);
                    stack.push(ch.node);
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::Gate;

    #[test]
    fn fig1_cnot_dot_structure() {
        let mut pkg = Qmdd::new(2);
        let e = pkg.gate(&Gate::cx(0, 1));
        let dot = pkg.to_dot(e);
        assert!(dot.starts_with("digraph qmdd {"));
        assert!(dot.contains("label=\"x0\""));
        assert!(dot.contains("label=\"x1\""));
        // CNOT root: U01 and U10 quadrants are zero.
        assert!(dot.contains("U01\", style=dashed"));
        assert!(dot.contains("U10\", style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn hadamard_weights_appear_on_edges() {
        let mut pkg = Qmdd::new(1);
        let e = pkg.gate(&Gate::h(0));
        let dot = pkg.to_dot(e);
        // Root weight 1/sqrt(2) on the entry edge; the -1 on U11.
        assert!(dot.contains("0.707107"));
        assert!(dot.contains("(-1.000000)"));
    }

    #[test]
    fn zero_diagram_renders() {
        let pkg = Qmdd::new(1);
        let dot = pkg.to_dot(Edge::ZERO);
        assert!(dot.contains("entry -> z"));
    }
}
