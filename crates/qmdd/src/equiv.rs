//! QMDD-based formal equivalence checking.
//!
//! The paper verifies every compiled output by building the QMDD of the
//! original and of the technology-mapped circuit and checking that the two
//! share the same graph ([`equivalent`]). For very wide circuits this crate
//! also offers the *interleaved miter* strategy ([`equivalent_miter`]): the
//! product `U1 * U2^dagger` is accumulated gate by gate, alternating between
//! the two circuits, so that the intermediate diagram stays close to the
//! identity while the circuits agree.

use crate::package::{CacheStats, Edge, Qmdd};
use qsyn_circuit::Circuit;

/// Outcome of an equivalence check, with diagnostic sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivReport {
    /// Whether the two circuits realize the same unitary (exactly, including
    /// global phase).
    pub equivalent: bool,
    /// Peak node count of the underlying package during the check.
    pub peak_nodes: usize,
    /// Final unique-table (hash-cons) size of the package.
    pub unique_nodes: usize,
    /// Compute-table probes performed during the check.
    pub cache_lookups: u64,
    /// Compute-table probes answered from the cache.
    pub cache_hits: u64,
    /// Live compute-table entries displaced by newer results.
    pub cache_evictions: u64,
    /// Mark-and-sweep collections performed during the check.
    pub gc_runs: u64,
    /// Total nodes reclaimed by those collections.
    pub nodes_reclaimed: u64,
}

impl EquivReport {
    /// Fraction of compute-table probes answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        CacheStats {
            lookups: self.cache_lookups,
            hits: self.cache_hits,
            ..CacheStats::default()
        }
        .hit_rate()
    }
}

/// Resource limits for a bounded equivalence check.
///
/// The default is unlimited on both axes, which makes
/// [`try_equivalent`] / [`try_equivalent_miter`] infallible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EquivBudget {
    /// Forced garbage-collection watermark: `Some(nodes)` collects whenever
    /// the arena exceeds that size (see [`equivalent_with_gc_threshold`]).
    pub gc_threshold: Option<usize>,
    /// Arena-size ceiling: the check aborts with [`EquivBudgetError`] once
    /// the package allocates more than this many nodes.
    pub node_budget: Option<usize>,
}

impl EquivBudget {
    /// A budget that only forces a GC watermark.
    pub fn with_gc_threshold(nodes: usize) -> Self {
        EquivBudget {
            gc_threshold: Some(nodes),
            ..EquivBudget::default()
        }
    }

    /// A budget that only caps the arena size.
    pub fn with_node_budget(nodes: usize) -> Self {
        EquivBudget {
            node_budget: Some(nodes),
            ..EquivBudget::default()
        }
    }
}

/// A bounded equivalence check exhausted its node budget before reaching a
/// verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivBudgetError {
    /// The configured arena ceiling.
    pub limit: usize,
    /// Peak arena size actually observed (at most one gate's worth of
    /// allocations past the ceiling, thanks to the package latch).
    pub used: usize,
}

impl std::fmt::Display for EquivBudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QMDD node budget exceeded: used {} of {} nodes",
            self.used, self.limit
        )
    }
}

impl std::error::Error for EquivBudgetError {}

/// Applies a budget to a fresh package and converts the latch into an error.
fn apply_budget(pkg: &mut Qmdd, budget: EquivBudget) {
    if let Some(t) = budget.gc_threshold {
        pkg.set_gc_threshold(t);
    }
    pkg.set_node_budget(budget.node_budget);
}

fn budget_verdict(pkg: &Qmdd, equivalent: bool) -> Result<EquivReport, EquivBudgetError> {
    if pkg.budget_exceeded() {
        return Err(EquivBudgetError {
            limit: pkg.node_budget().unwrap_or(0),
            used: pkg.peak_node_count(),
        });
    }
    Ok(report_from(pkg, equivalent))
}

/// Assembles a report from a finished package and the check's verdict.
fn report_from(pkg: &Qmdd, equivalent: bool) -> EquivReport {
    let cache = pkg.cache_stats();
    EquivReport {
        equivalent,
        peak_nodes: pkg.peak_node_count(),
        unique_nodes: pkg.unique_len(),
        cache_lookups: cache.lookups,
        cache_hits: cache.hits,
        cache_evictions: cache.evictions,
        gc_runs: cache.gc_runs,
        nodes_reclaimed: cache.nodes_reclaimed,
    }
}

/// Checks equivalence the way the paper describes: build both QMDDs in one
/// package; canonicity makes equality a root-edge comparison.
///
/// Circuits of different widths are compared on the wider register (the
/// narrower circuit acts as the identity on the extra lines).
pub fn equivalent(a: &Circuit, b: &Circuit) -> EquivReport {
    equivalent_with_gc_threshold(a, b, None)
}

/// [`equivalent`] with a forced garbage-collection watermark (stress and
/// tuning hook): `Some(nodes)` collects whenever the arena exceeds that
/// size, `None` uses the package default. Verdicts are identical for any
/// watermark — only peak memory and the GC counters change.
pub fn equivalent_with_gc_threshold(
    a: &Circuit,
    b: &Circuit,
    gc_threshold: Option<usize>,
) -> EquivReport {
    let budget = EquivBudget {
        gc_threshold,
        node_budget: None,
    };
    try_equivalent(a, b, budget).expect("unbudgeted check cannot exhaust")
}

/// [`equivalent`] under a resource budget: aborts with
/// [`EquivBudgetError`] instead of growing the arena past
/// `budget.node_budget`. With no node budget this never fails.
pub fn try_equivalent(
    a: &Circuit,
    b: &Circuit,
    budget: EquivBudget,
) -> Result<EquivReport, EquivBudgetError> {
    let n = a.n_qubits().max(b.n_qubits());
    let mut pkg = Qmdd::new(n);
    apply_budget(&mut pkg, budget);
    let ea = pkg.circuit(a);
    // Protect the first root: a collection triggered while building the
    // second circuit must keep (and relocate) it.
    let slot = pkg.protect(ea);
    let eb = pkg.circuit(b);
    let ea = pkg.protected(slot);
    budget_verdict(&pkg, ea == eb)
}

/// Checks equivalence via the interleaved miter `U_a * U_b^dagger = I`.
///
/// Gates from `a` multiply the accumulator on the left in program order;
/// inverted gates from `b` multiply on the right, also in program order, so
/// the accumulator converges to `U_a * U_b^dagger`. Interleaving is
/// proportional to the two gate counts, which keeps the intermediate
/// diagram near the identity whenever `b` is a gate-by-gate expansion of
/// `a` — exactly the situation after technology mapping.
pub fn equivalent_miter(a: &Circuit, b: &Circuit) -> EquivReport {
    equivalent_miter_with_gc_threshold(a, b, None)
}

/// [`equivalent_miter`] with a forced garbage-collection watermark; see
/// [`equivalent_with_gc_threshold`].
pub fn equivalent_miter_with_gc_threshold(
    a: &Circuit,
    b: &Circuit,
    gc_threshold: Option<usize>,
) -> EquivReport {
    let budget = EquivBudget {
        gc_threshold,
        node_budget: None,
    };
    try_equivalent_miter(a, b, budget).expect("unbudgeted check cannot exhaust")
}

/// [`equivalent_miter`] under a resource budget; see [`try_equivalent`].
pub fn try_equivalent_miter(
    a: &Circuit,
    b: &Circuit,
    budget: EquivBudget,
) -> Result<EquivReport, EquivBudgetError> {
    try_equivalent_miter_batched(a, b, budget, 1)
}

/// Default fused-block length for the batched miter. Pairs of gates fused
/// into one block halve the full-width accumulator walks; longer blocks
/// grow too dense (a block touching many scattered variables defeats the
/// near-identity short-circuits in `mul`) and measure slower on wide
/// supports, so the default stays at 2.
pub const DEFAULT_MITER_BATCH: usize = 2;

/// [`try_equivalent_miter`] with fused gate blocks: each scheduling step
/// takes up to `batch` gates from one side, multiplies them into one small
/// block diagram, and folds the block into the accumulator with a single
/// product — cutting the full-width accumulator walks (and their
/// unique-table/compute-cache round-trips) per gate by up to `batch`.
///
/// `a`-gates only ever multiply on the left and inverted `b`-gates only on
/// the right, and left- and right-multiplication commute as operations, so
/// *any* interleaving yields the same product `U_a * U_b^dagger`; batching
/// merely coarsens the proportional schedule from per-gate to per-block
/// (the intermediate diagram can now drift up to `batch` gates from the
/// identity). The verdict is identical for every `batch`; `batch <= 1`
/// *is* the unbatched miter, product for product.
pub fn try_equivalent_miter_batched(
    a: &Circuit,
    b: &Circuit,
    budget: EquivBudget,
    batch: usize,
) -> Result<EquivReport, EquivBudgetError> {
    let n = a.n_qubits().max(b.n_qubits());
    let mut pkg = Qmdd::new(n);
    apply_budget(&mut pkg, budget);
    let batch = batch.max(1);
    let mut acc = pkg.identity();
    let (la, lb) = (a.len().max(1), b.len().max(1));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        if pkg.budget_exceeded() {
            break;
        }
        // Advance whichever side is proportionally behind (block-granular).
        let take_a = i < a.len() && (j >= b.len() || i * lb <= j * la);
        // No `maybe_gc` may run while a block is live: a collection roots
        // only `acc` (plus protected slots) and would invalidate the
        // half-built block. Blocks are at most `batch` gates, so the
        // un-collected intermediates stay bounded.
        if take_a {
            let end = (i + batch).min(a.len());
            let mut block = pkg.gate(&a.gates()[i]);
            i += 1;
            while i < end && !pkg.budget_exceeded() {
                let ge = pkg.gate(&a.gates()[i]);
                block = pkg.mul(ge, block);
                i += 1;
            }
            acc = pkg.mul(block, acc);
        } else {
            let end = (j + batch).min(b.len());
            let mut block = pkg.gate(&b.gates()[j].inverse());
            j += 1;
            while j < end && !pkg.budget_exceeded() {
                let ge = pkg.gate(&b.gates()[j].inverse());
                block = pkg.mul(block, ge);
                j += 1;
            }
            acc = pkg.mul(acc, block);
        }
        acc = pkg.maybe_gc(acc);
    }
    let id = pkg.identity();
    budget_verdict(&pkg, acc == id)
}

/// The sorted set of qubits either circuit touches — the *support* of a
/// miter check. Lines outside this set are exact identity on both sides
/// by construction.
pub fn miter_support(a: &Circuit, b: &Circuit) -> Vec<usize> {
    let width = a.n_qubits().max(b.n_qubits());
    let mut touched = vec![false; width];
    for g in a.gates().iter().chain(b.gates()) {
        for q in g.qubits() {
            touched[q] = true;
        }
    }
    (0..width).filter(|&q| touched[q]).collect()
}

/// [`try_equivalent_miter`] on a compacted register of just the `support`
/// qubits, with gate products fused in [`DEFAULT_MITER_BATCH`]-long blocks.
///
/// Both circuits are relabeled onto a dense register of `support.len()`
/// lines (support qubit `support[k]` becomes line `k`) and the miter runs
/// there. Every line outside the support is the exact identity on both
/// sides, and identity tensor factors carry no phase, so the restricted
/// verdict equals the full-register verdict bit-for-bit — for equal
/// circuits and for unequal ones alike. Use [`miter_support`] to compute
/// the support set.
///
/// # Panics
///
/// Panics if `support` is not strictly ascending, or if a gate of either
/// circuit touches a qubit outside `support` (the restriction would then
/// be unsound, so this is a contract violation rather than a verdict).
pub fn try_equivalent_miter_on(
    support: &[usize],
    spec: &Circuit,
    out: &Circuit,
    budget: EquivBudget,
) -> Result<EquivReport, EquivBudgetError> {
    try_equivalent_miter_on_batched(support, spec, out, budget, DEFAULT_MITER_BATCH)
}

/// [`try_equivalent_miter_on`] with an explicit fused-block length
/// (`batch <= 1` disables batching).
pub fn try_equivalent_miter_on_batched(
    support: &[usize],
    spec: &Circuit,
    out: &Circuit,
    budget: EquivBudget,
    batch: usize,
) -> Result<EquivReport, EquivBudgetError> {
    assert!(
        support.windows(2).all(|w| w[0] < w[1]),
        "support must be strictly ascending"
    );
    if support.is_empty() {
        // Both circuits are gate-free (any gate would touch a qubit
        // outside the empty support): both sides are the identity, which
        // is also the full-register verdict.
        assert!(
            spec.is_empty() && out.is_empty(),
            "gate outside the declared (empty) support"
        );
        return Ok(EquivReport {
            equivalent: true,
            peak_nodes: 0,
            unique_nodes: 0,
            cache_lookups: 0,
            cache_hits: 0,
            cache_evictions: 0,
            gc_runs: 0,
            nodes_reclaimed: 0,
        });
    }
    let width = support.last().expect("non-empty") + 1;
    let mut pos = vec![usize::MAX; width];
    for (k, &q) in support.iter().enumerate() {
        pos[q] = k;
    }
    let remap = |q: usize| {
        let p = pos.get(q).copied().unwrap_or(usize::MAX);
        assert!(
            p != usize::MAX,
            "gate touches qubit {q} outside the declared support"
        );
        p
    };
    let spec_on = spec.relabeled(support.len(), remap);
    let out_on = out.relabeled(support.len(), remap);
    try_equivalent_miter_batched(&spec_on, &out_on, budget, batch)
}

/// Convenience: canonical-compare equivalence as a bare boolean.
pub fn circuits_equal(a: &Circuit, b: &Circuit) -> bool {
    equivalent(a, b).equivalent
}

/// Partial equivalence for circuits that consume *clean ancillas*: checks
/// `U_a P = U_b P`, where `P` projects onto inputs whose `ancilla` lines
/// are |0>. Two circuits may differ arbitrarily on ancilla-excited inputs
/// and still pass — the relevant guarantee when a synthesis product only
/// ever runs with freshly initialized ancilla lines.
///
/// With an empty `ancilla` list this degenerates to full [`equivalent`].
pub fn equivalent_with_ancillas(a: &Circuit, b: &Circuit, ancilla: &[usize]) -> EquivReport {
    let n = a.n_qubits().max(b.n_qubits());
    assert!(
        ancilla.iter().all(|&q| q < n),
        "ancilla line outside the register"
    );
    let mut pkg = Qmdd::new(n);
    let zero_proj = [
        [qsyn_gate::C64::ONE, qsyn_gate::C64::ZERO],
        [qsyn_gate::C64::ZERO, qsyn_gate::C64::ZERO],
    ];
    let ident = [
        [qsyn_gate::C64::ONE, qsyn_gate::C64::ZERO],
        [qsyn_gate::C64::ZERO, qsyn_gate::C64::ONE],
    ];
    let p = pkg.tensor(|l| if ancilla.contains(&l) { zero_proj } else { ident });
    // Collections during the circuit builds must preserve the projector
    // and the earlier circuit's root.
    let p_slot = pkg.protect(p);
    let ea = pkg.circuit(a);
    let ea_slot = pkg.protect(ea);
    let eb = pkg.circuit(b);
    let (p, ea) = (pkg.protected(p_slot), pkg.protected(ea_slot));
    let ap = pkg.mul(ea, p);
    let bp = pkg.mul(eb, p);
    report_from(&pkg, ap == bp)
}

/// Process fidelity `|Tr(U_a† U_b)| / 2^n` between two circuits, computed
/// entirely on decision diagrams (works at any register width).
///
/// Exactly `1.0` when the circuits are equal up to a global phase; strictly
/// below otherwise. This is the *graded* companion to the paper's yes/no
/// QMDD check — useful for diagnosing how wrong a near-miss is.
pub fn process_fidelity(a: &Circuit, b: &Circuit) -> f64 {
    let n = a.n_qubits().max(b.n_qubits());
    let mut pkg = Qmdd::new(n);
    let ea = pkg.circuit(a);
    let slot = pkg.protect(ea);
    let eb = pkg.circuit(b);
    let ea = pkg.protected(slot);
    let adj = pkg.adjoint(ea);
    let prod = pkg.mul(adj, eb);
    let tr = pkg.trace(prod);
    tr.abs() / (1u128 << n) as f64
}

/// Builds the QMDD of a circuit and returns its root together with the
/// package, for callers that want to inspect diagram structure.
pub fn build_circuit_qmdd(c: &Circuit) -> (Qmdd, Edge) {
    let mut pkg = Qmdd::new(c.n_qubits());
    let e = pkg.circuit(c);
    (pkg, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::Gate;

    fn swap_native() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::swap(0, 2));
        c
    }

    fn swap_cnots() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 2));
        c.push(Gate::cx(2, 0));
        c.push(Gate::cx(0, 2));
        c
    }

    #[test]
    fn canonical_check_accepts_equal() {
        assert!(equivalent(&swap_native(), &swap_cnots()).equivalent);
    }

    #[test]
    fn canonical_check_rejects_different() {
        let mut other = swap_cnots();
        other.push(Gate::t(1));
        assert!(!equivalent(&swap_native(), &other).equivalent);
    }

    #[test]
    fn miter_accepts_equal() {
        assert!(equivalent_miter(&swap_native(), &swap_cnots()).equivalent);
    }

    #[test]
    fn miter_rejects_different() {
        let mut other = swap_cnots();
        other.push(Gate::x(1));
        assert!(!equivalent_miter(&swap_native(), &other).equivalent);
    }

    #[test]
    fn global_phase_differences_are_rejected() {
        // Z X = -X Z: same operation up to a global phase of -1; the
        // paper's check demands exact equality, so this must fail.
        let mut zx = Circuit::new(1);
        zx.push(Gate::x(0));
        zx.push(Gate::single(qsyn_gate::SingleOp::Z, 0));
        let mut xz = Circuit::new(1);
        xz.push(Gate::single(qsyn_gate::SingleOp::Z, 0));
        xz.push(Gate::x(0));
        assert!(!circuits_equal(&zx, &xz));
        assert!(!equivalent_miter(&zx, &xz).equivalent);
    }

    #[test]
    fn width_padding_treats_missing_lines_as_identity() {
        let narrow = {
            let mut c = Circuit::new(1);
            c.push(Gate::h(0));
            c.push(Gate::h(0));
            c
        };
        let wide = Circuit::new(4);
        assert!(circuits_equal(&narrow, &wide));
    }

    #[test]
    fn empty_circuits_are_equivalent() {
        assert!(circuits_equal(&Circuit::new(2), &Circuit::new(2)));
        assert!(equivalent_miter(&Circuit::new(2), &Circuit::new(2)).equivalent);
    }

    #[test]
    fn miter_handles_very_uneven_lengths() {
        // One gate vs. its 7-gate expansion (H-conjugated reversed CNOT
        // SWAP construction, paper Fig. 3 + Fig. 6).
        let mut a = Circuit::new(2);
        a.push(Gate::swap(0, 1));
        let mut b = Circuit::new(2);
        b.push(Gate::cx(0, 1));
        b.push(Gate::h(0));
        b.push(Gate::h(1));
        b.push(Gate::cx(0, 1));
        b.push(Gate::h(0));
        b.push(Gate::h(1));
        b.push(Gate::cx(0, 1));
        assert!(equivalent_miter(&a, &b).equivalent);
        assert!(equivalent(&a, &b).equivalent);
    }

    #[test]
    fn report_exposes_peak_nodes() {
        let r = equivalent(&swap_native(), &swap_cnots());
        assert!(r.peak_nodes > 0);
    }

    #[test]
    fn report_exposes_package_counters() {
        let r = equivalent(&swap_native(), &swap_cnots());
        assert!(r.unique_nodes > 0);
        assert!(r.cache_lookups > 0, "circuit building must probe the cache");
        assert!(r.cache_hits <= r.cache_lookups);
        let rate = r.cache_hit_rate();
        assert!((0.0..=1.0).contains(&rate), "{rate}");
    }

    #[test]
    fn process_fidelity_grades_near_misses() {
        let a = swap_native();
        let b = swap_cnots();
        assert!((process_fidelity(&a, &b) - 1.0).abs() < 1e-9, "equal -> 1");
        // Global phase: Z X vs X Z differ by -1; fidelity still 1.
        let mut zx = Circuit::new(1);
        zx.push(Gate::x(0));
        zx.push(Gate::single(qsyn_gate::SingleOp::Z, 0));
        let mut xz = Circuit::new(1);
        xz.push(Gate::single(qsyn_gate::SingleOp::Z, 0));
        xz.push(Gate::x(0));
        assert!((process_fidelity(&zx, &xz) - 1.0).abs() < 1e-9);
        // A sabotaged circuit scores below 1 but above 0.
        let mut sab = swap_cnots();
        sab.push(Gate::t(0));
        let f = process_fidelity(&a, &sab);
        assert!(f < 0.999, "must detect the extra T: {f}");
        assert!(f > 0.5, "a single T is a small perturbation: {f}");
        // Orthogonal-ish: identity vs X on one line.
        let id1 = Circuit::new(1);
        let mut x1 = Circuit::new(1);
        x1.push(Gate::x(0));
        assert!(process_fidelity(&id1, &x1) < 1e-9);
    }

    #[test]
    fn process_fidelity_works_on_wide_registers() {
        // 40-qubit GHZ preparation vs itself with one extra T: dense trace
        // is unthinkable, the DD trace is instant.
        let mut ghz = Circuit::new(40);
        ghz.push(Gate::h(0));
        for q in 1..40 {
            ghz.push(Gate::cx(q - 1, q));
        }
        assert!((process_fidelity(&ghz, &ghz) - 1.0).abs() < 1e-9);
        let mut other = ghz.clone();
        other.push(Gate::t(20));
        let f = process_fidelity(&ghz, &other);
        assert!(f < 1.0 - 1e-6 && f > 0.9, "{f}");
    }

    #[test]
    fn ancilla_aware_equivalence_ignores_excited_ancillas() {
        // Two ways to compute AND into line 2 given a *clean* line 2:
        // a Toffoli, versus a Toffoli followed by junk that only acts
        // when line 2 started |1>.
        let mut clean = Circuit::new(3);
        clean.push(Gate::toffoli(0, 1, 2));
        let mut messy = Circuit::new(3);
        messy.push(Gate::toffoli(0, 1, 2));
        // CZ(2 -> 0) after a guaranteed-|0>-start line only fires on
        // inputs outside the projected subspace... not quite: line 2 may
        // be |1> after the Toffoli. Use a gate conditioned on the ancilla
        // *input* instead: apply before the Toffoli.
        messy.gates_mut().insert(0, Gate::cz(2, 0));
        assert!(!circuits_equal(&clean, &messy), "fully different");
        assert!(
            equivalent_with_ancillas(&clean, &messy, &[2]).equivalent,
            "equal on the ancilla-clean subspace"
        );
        // But differing on a non-ancilla line still fails.
        let mut wrong = Circuit::new(3);
        wrong.push(Gate::toffoli(0, 1, 2));
        wrong.push(Gate::x(0));
        assert!(!equivalent_with_ancillas(&clean, &wrong, &[2]).equivalent);
    }

    #[test]
    fn ancilla_aware_with_no_ancillas_is_full_equivalence() {
        let a = swap_native();
        let b = swap_cnots();
        assert!(equivalent_with_ancillas(&a, &b, &[]).equivalent);
        let mut c = swap_cnots();
        c.push(Gate::t(0));
        assert!(!equivalent_with_ancillas(&a, &c, &[]).equivalent);
    }

    #[test]
    fn verdicts_unchanged_across_forced_sweeps() {
        // GC stress: the same pairs, checked with collections forced on
        // essentially every step, must produce identical verdicts, and the
        // forced runs must actually have collected.
        let equal = (swap_native(), swap_cnots());
        let mut tweaked = swap_cnots();
        tweaked.push(Gate::t(1));
        let unequal = (swap_native(), tweaked);
        for (a, b) in [&equal, &unequal] {
            let base = equivalent(a, b);
            let forced = equivalent_with_gc_threshold(a, b, Some(4));
            assert_eq!(base.equivalent, forced.equivalent);
            assert!(forced.gc_runs > 0, "tiny watermark must sweep");
            let base_m = equivalent_miter(a, b);
            let forced_m = equivalent_miter_with_gc_threshold(a, b, Some(4));
            assert_eq!(base_m.equivalent, forced_m.equivalent);
            assert!(forced_m.gc_runs > 0, "tiny watermark must sweep");
        }
    }

    #[test]
    fn forced_sweeps_reduce_peak_nodes_on_deep_products() {
        // A deep Clifford+T product leaves plenty of dead intermediates;
        // an aggressive watermark must lower the observed peak while
        // preserving the verdict.
        let mut c = Circuit::new(5);
        let mut s = 3u64;
        for _ in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            match s % 4 {
                0 => c.push(Gate::h((s % 5) as usize)),
                1 => c.push(Gate::t((s % 5) as usize)),
                2 => c.push(Gate::tdg((s % 5) as usize)),
                _ => {
                    let a = (s % 5) as usize;
                    let b = ((s >> 8) % 5) as usize;
                    if a != b {
                        c.push(Gate::cx(a, b));
                    }
                }
            }
        }
        let base = equivalent(&c, &c.clone());
        let forced = equivalent_with_gc_threshold(&c, &c.clone(), Some(64));
        assert!(base.equivalent && forced.equivalent);
        assert!(forced.gc_runs > 0);
        assert!(forced.nodes_reclaimed > 0);
        assert!(
            forced.peak_nodes <= base.peak_nodes,
            "sweeping must not raise the peak: {} vs {}",
            forced.peak_nodes,
            base.peak_nodes
        );
    }

    fn dense_clifford_t(n: usize, gates: usize, mut s: u64) -> Circuit {
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            match s % 4 {
                0 => c.push(Gate::h((s % n as u64) as usize)),
                1 => c.push(Gate::t((s % n as u64) as usize)),
                2 => c.push(Gate::tdg((s % n as u64) as usize)),
                _ => {
                    let a = (s % n as u64) as usize;
                    let b = ((s >> 8) % n as u64) as usize;
                    if a != b {
                        c.push(Gate::cx(a, b));
                    }
                }
            }
        }
        c
    }

    #[test]
    fn tiny_node_budget_aborts_cleanly() {
        let c = dense_clifford_t(6, 200, 17);
        let err = try_equivalent(&c, &c.clone(), EquivBudget::with_node_budget(16))
            .expect_err("16 nodes cannot host a dense 6-qubit check");
        assert_eq!(err.limit, 16);
        assert!(err.used > 16, "must report the observed overshoot");
        let err_m = try_equivalent_miter(&c, &c.clone(), EquivBudget::with_node_budget(16))
            .expect_err("miter under the same budget must abort too");
        assert_eq!(err_m.limit, 16);
    }

    #[test]
    fn generous_node_budget_matches_unbudgeted_verdicts() {
        let equal = (swap_native(), swap_cnots());
        let mut tweaked = swap_cnots();
        tweaked.push(Gate::t(1));
        let unequal = (swap_native(), tweaked);
        let budget = EquivBudget {
            gc_threshold: Some(64),
            node_budget: Some(1 << 20),
        };
        for (a, b) in [&equal, &unequal] {
            let base = equivalent(a, b);
            let bounded = try_equivalent(a, b, budget).expect("generous budget");
            assert_eq!(base.equivalent, bounded.equivalent);
            let base_m = equivalent_miter(a, b);
            let bounded_m = try_equivalent_miter(a, b, budget).expect("generous budget");
            assert_eq!(base_m.equivalent, bounded_m.equivalent);
        }
    }

    #[test]
    fn budget_error_display_names_limits() {
        let e = EquivBudgetError { limit: 8, used: 11 };
        let text = e.to_string();
        assert!(text.contains("8") && text.contains("11"), "{text}");
    }

    #[test]
    fn build_circuit_qmdd_exposes_structure() {
        let (pkg, e) = build_circuit_qmdd(&swap_native());
        assert!(pkg.node_count(e) >= 3);
    }

    #[test]
    fn batched_miter_matches_unbatched_verdicts() {
        let equal = (dense_clifford_t(5, 120, 7), dense_clifford_t(5, 120, 7));
        let mut tweaked = dense_clifford_t(5, 120, 7);
        tweaked.push(Gate::t(2));
        let unequal = (dense_clifford_t(5, 120, 7), tweaked);
        for (a, b) in [&equal, &unequal] {
            let base = try_equivalent_miter(a, b, EquivBudget::default()).unwrap();
            for batch in [1, 2, 8, 64] {
                let fused =
                    try_equivalent_miter_batched(a, b, EquivBudget::default(), batch).unwrap();
                assert_eq!(base.equivalent, fused.equivalent, "batch {batch}");
            }
        }
    }

    #[test]
    fn miter_support_unions_both_circuits() {
        let mut a = Circuit::new(16);
        a.push(Gate::cx(2, 11));
        let mut b = Circuit::new(16);
        b.push(Gate::swap(5, 11));
        assert_eq!(miter_support(&a, &b), vec![2, 5, 11]);
        assert!(miter_support(&Circuit::new(16), &Circuit::new(16)).is_empty());
    }

    #[test]
    fn restricted_miter_matches_full_on_scattered_support() {
        // The same window on qubits {2, 5, 11} of a 16-wide register,
        // checked full-register and support-restricted: identical verdicts
        // on the equal pair and on a sabotaged pair, with a strictly
        // narrower package doing the restricted work.
        let mut spec = Circuit::new(16);
        spec.push(Gate::h(2));
        spec.push(Gate::cx(2, 11));
        spec.push(Gate::t(5));
        spec.push(Gate::cx(5, 11));
        let out = spec.clone();
        let support = miter_support(&spec, &out);
        assert_eq!(support, vec![2, 5, 11]);
        let full = try_equivalent_miter(&spec, &out, EquivBudget::default()).unwrap();
        let restricted = try_equivalent_miter_on(&support, &spec, &out, EquivBudget::default())
            .unwrap();
        assert!(full.equivalent && restricted.equivalent);
        assert!(restricted.peak_nodes <= full.peak_nodes);
        let mut bad = out.clone();
        bad.push(Gate::t(11));
        let support_bad = miter_support(&spec, &bad);
        let full_bad = try_equivalent_miter(&spec, &bad, EquivBudget::default()).unwrap();
        let restricted_bad =
            try_equivalent_miter_on(&support_bad, &spec, &bad, EquivBudget::default()).unwrap();
        assert!(!full_bad.equivalent && !restricted_bad.equivalent);
    }

    #[test]
    fn restoration_swap_windows_stay_equivalent_when_restricted() {
        // A routed window: SWAPs move a logical line out and restore it,
        // with the middle relabeled accordingly — exactly the shape
        // `compile_stream` verifies. The support includes the SWAP-only
        // lines even though the spec never touches them.
        let mut spec = Circuit::new(8);
        spec.push(Gate::h(1));
        spec.push(Gate::cx(1, 6));
        let mut out = Circuit::new(8);
        out.push(Gate::swap(1, 3));
        out.push(Gate::h(3));
        out.push(Gate::cx(3, 6));
        out.push(Gate::swap(1, 3));
        let support = miter_support(&spec, &out);
        assert_eq!(support, vec![1, 3, 6]);
        let full = try_equivalent_miter(&spec, &out, EquivBudget::default()).unwrap();
        let restricted =
            try_equivalent_miter_on(&support, &spec, &out, EquivBudget::default()).unwrap();
        assert_eq!(full.equivalent, restricted.equivalent);
        assert!(restricted.equivalent);
    }

    #[test]
    fn empty_support_identity_window_is_trivially_equivalent() {
        let r = try_equivalent_miter_on(&[], &Circuit::new(32), &Circuit::new(32), EquivBudget::default())
            .unwrap();
        assert!(r.equivalent);
        assert_eq!(r.peak_nodes, 0);
    }

    #[test]
    #[should_panic(expected = "outside the declared support")]
    fn restricted_miter_rejects_gates_outside_support() {
        let mut c = Circuit::new(4);
        c.push(Gate::h(3));
        let _ = try_equivalent_miter_on(&[0, 1], &c, &c.clone(), EquivBudget::default());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn restricted_miter_rejects_unsorted_support() {
        let c = Circuit::new(4);
        let _ = try_equivalent_miter_on(&[2, 1], &c, &c.clone(), EquivBudget::default());
    }

    #[test]
    fn restricted_miter_honors_node_budgets() {
        let c = dense_clifford_t(6, 200, 17);
        let support = miter_support(&c, &c);
        let err = try_equivalent_miter_on(&support, &c, &c.clone(), EquivBudget::with_node_budget(16))
            .expect_err("16 nodes cannot host a dense 6-qubit check");
        assert_eq!(err.limit, 16);
    }
}
