//! Differential property test: the support-restricted miter verdict equals
//! the full-register miter verdict on random windows over random supports —
//! equal windows, sabotaged windows, restoration-SWAP windows, and
//! empty-support identity windows alike, at every batch size.
//!
//! This is the guarantee `compile_stream` leans on when it verifies each
//! streaming window on a compacted register of just the window's touched
//! qubits instead of dragging the full device width through every gate
//! product.

use proptest::prelude::*;
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;
use qsyn_qmdd::{
    miter_support, try_equivalent_miter, try_equivalent_miter_batched, try_equivalent_miter_on,
    try_equivalent_miter_on_batched, EquivBudget,
};

const WIDTH: usize = 14;

/// A random Clifford+T+SWAP window touching only `support` lines.
fn window_on(support: &[usize], ops: &[(u8, usize, usize)]) -> Circuit {
    let mut c = Circuit::new(WIDTH);
    if support.is_empty() {
        return c;
    }
    for &(kind, x, y) in ops {
        let a = support[x % support.len()];
        let b = support[y % support.len()];
        match kind {
            0 => c.push(Gate::h(a)),
            1 => c.push(Gate::t(a)),
            2 => c.push(Gate::tdg(a)),
            3 if a != b => c.push(Gate::cx(a, b)),
            _ if a != b => c.push(Gate::swap(a, b)),
            _ => c.push(Gate::h(a)),
        }
    }
    c
}

/// A routed-looking version of `spec`: conjugated by a SWAP between the
/// first and last support lines with the middle relabeled to match, so the
/// layout is moved and then *restored* — the exact shape of a streaming
/// window after routing. Unitarily equal to `spec` by construction.
fn routed_with_restoration(spec: &Circuit, support: &[usize]) -> Circuit {
    if support.len() < 2 {
        return spec.clone();
    }
    let (lo, hi) = (support[0], support[support.len() - 1]);
    let perm = |q: usize| {
        if q == lo {
            hi
        } else if q == hi {
            lo
        } else {
            q
        }
    };
    let mut out = Circuit::new(WIDTH);
    out.push(Gate::swap(lo, hi));
    for g in spec.relabeled(WIDTH, perm).gates() {
        out.push(g.clone());
    }
    out.push(Gate::swap(lo, hi));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn restricted_verdicts_equal_full_register_verdicts(
        mask in 0u16..(1u16 << WIDTH),
        ops in proptest::collection::vec((0u8..5, 0usize..64, 0usize..64), 0..24),
        flags in 0u8..4,
    ) {
        let route = flags & 1 != 0;
        let sabotage = flags & 2 != 0;
        let lines: Vec<usize> = (0..WIDTH).filter(|&q| mask & (1 << q) != 0).collect();
        let spec = window_on(&lines, &ops);
        let mut out = if route {
            routed_with_restoration(&spec, &lines)
        } else {
            spec.clone()
        };
        if sabotage && !lines.is_empty() {
            out.push(Gate::t(lines[0]));
        }
        let support = miter_support(&spec, &out);
        let budget = EquivBudget::default();
        let full = try_equivalent_miter(&spec, &out, budget).unwrap();
        let restricted = try_equivalent_miter_on(&support, &spec, &out, budget).unwrap();
        prop_assert_eq!(full.equivalent, restricted.equivalent);
        for batch in [1usize, 3, 8] {
            let full_b = try_equivalent_miter_batched(&spec, &out, budget, batch).unwrap();
            let restricted_b =
                try_equivalent_miter_on_batched(&support, &spec, &out, budget, batch).unwrap();
            prop_assert_eq!(full.equivalent, full_b.equivalent, "full batch {}", batch);
            prop_assert_eq!(full.equivalent, restricted_b.equivalent, "restricted batch {}", batch);
        }
        // The verdict itself is what we expect: a sabotaged non-empty
        // window differs, everything else is equal (empty support means
        // the sabotage T was never pushed).
        let expect_equal = !sabotage || lines.is_empty();
        prop_assert_eq!(full.equivalent, expect_equal);
    }
}
