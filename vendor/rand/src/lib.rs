//! Minimal vendored stand-in for the `rand` crate, covering exactly the
//! API this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen_range` /
//! `gen_bool`.
//!
//! The build environment has no access to the crates registry, so the
//! workspace vendors this implementation by path. Sequences are
//! deterministic per seed (splitmix64) but deliberately *not* identical to
//! upstream `rand` — no test in this repository relies on upstream's exact
//! streams, only on seeded reproducibility.

/// Random-number generation core: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 uniform mantissa bits in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Rejection-sampled uniform draw in `[0, span)` — no modulo bias.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: splitmix64, which passes
    /// basic statistical tests and is trivially reproducible from a `u64`
    /// seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u32);
            assert_eq!(y, 5);
            let z = rng.gen_range(0..3u8);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
