//! Minimal vendored stand-in for the `proptest` crate, covering the API
//! this workspace uses: the [`Strategy`] trait with `prop_map` /
//! `prop_filter`, integer-range and tuple strategies,
//! [`collection::vec`], `prop_oneof!`, and the `proptest!` macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no access to the crates registry, so the
//! workspace vendors this implementation by path. Differences from
//! upstream: inputs are sampled from a fixed-seed RNG (runs are fully
//! deterministic), and there is no shrinking — a failing case panics with
//! the assertion message directly.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Test-case configuration and error plumbing.

    /// Runner configuration (`cases` = accepted samples per property).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` accepted samples.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` / a filter; it does not
        /// count toward the case budget.
        Reject(String),
        /// An assertion failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (skip this sample).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// A failure (falsified property).
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values; `sample` returns `None` when a filter
    /// rejects the draw (the runner resamples).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value, or `None` on a filtered-out sample.
        fn sample(&self, rng: &mut StdRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`; `reason` is reported when
        /// too many draws are rejected.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                _reason: reason.into(),
                pred,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> Option<V> {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        _reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            self.inner.sample(rng).filter(&self.pred)
        }
    }

    /// Always yields a clone of one value.
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut StdRng) -> Option<V> {
            Some(self.0.clone())
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A uniform union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> Option<V> {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    let ($($v,)+) = self;
                    Some(($($v.sample(rng)?,)+))
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A/a)
        (A/a, B/b)
        (A/a, B/b, C/c)
        (A/a, B/b, C/c, D/d)
        (A/a, B/b, C/c, D/d, E/e)
        (A/a, B/b, C/c, D/d, E/e, F/f)
    );
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Drives one property: samples until `cases` accepted runs complete,
/// resampling on filter misses and `prop_assume!` rejections (bounded),
/// panicking on the first failed case. Called by the `proptest!` macro.
pub fn run_property<V>(
    name: &str,
    config: &test_runner::Config,
    strategy: &dyn strategy::Strategy<Value = V>,
    mut case: impl FnMut(V) -> Result<(), test_runner::TestCaseError>,
) {
    // Fixed seed mixed with the property name: deterministic, but distinct
    // properties draw distinct streams.
    let mut seed = 0xc0ff_ee00_5eed_1234u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let budget = u64::from(config.cases) * 50 + 1000;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= budget,
            "{name}: too many rejected samples ({accepted}/{} accepted after {attempts} draws)",
            config.cases
        );
        let Some(value) = strategy.sample(&mut rng) else {
            continue; // filter miss: resample
        };
        match case(value) {
            Ok(()) => accepted += 1,
            Err(test_runner::TestCaseError::Reject(_)) => continue,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("property '{name}' falsified: {msg}")
            }
        }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs. An optional
/// leading `#![proptest_config(expr)]` sets the case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`] — one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &config,
                &strategy,
                |value| {
                    let ($($pat,)+) = value;
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Fails the current case unless `cond` holds (optionally with a message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// Rejects the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn always_small(x in 0u32..100) {
                prop_assert!(x < 5, "x={x}");
            }
        }
        always_small();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds((a, b) in (0usize..7, 3u32..9)) {
            prop_assert!(a < 7);
            prop_assert!((3..9).contains(&b));
        }

        #[test]
        fn filters_and_assume_reject_cases(
            (a, b) in (0usize..10, 0usize..10).prop_filter("distinct", |(a, b)| a != b),
        ) {
            prop_assume!(a + b > 0);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn oneof_and_vec_compose(
            v in crate::collection::vec(
                prop_oneof![(0u32..4).prop_map(|x| x * 2), (10u32..12).boxed()],
                1..6,
            ),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for x in v {
                prop_assert!(x % 2 == 0 || (10..12).contains(&x), "{x}");
            }
        }
    }
}
