//! Minimal vendored stand-in for the `criterion` crate, covering the API
//! this workspace's benches use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to the crates registry, so the
//! workspace vendors this implementation by path. Semantics match what CI
//! relies on: positional command-line arguments are substring filters over
//! `group/id` names, `--test` runs each selected benchmark exactly once
//! (smoke mode), and normal mode reports a mean wall-clock time per
//! iteration on stdout. There are no statistical refinements and no
//! persisted baselines.

use std::time::{Duration, Instant};

/// Harness entry point: parses CLI filters and drives benchmark groups.
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Cargo and criterion pass-through flags we accept and
                // ignore (benches must not crash under `cargo bench`).
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Criterion { filters, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    fn selected(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f.as_str()))
    }
}

/// A named benchmark identifier (`group/id` in output and filters).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{p}", name.into()))
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark closure under `group/id`.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.into(), &mut f);
    }

    /// Runs a benchmark closure with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.0, &mut |b| f(b, input));
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full_id = format!("{}/{id}", self.name);
        if !self.criterion.selected(&full_id) {
            return;
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                samples: 1,
                total: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            println!("Testing {full_id} ... ok");
            return;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        println!(
            "{full_id:<48} time: {:>12} ({} iterations)",
            format_duration(per_iter),
            b.iters
        );
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: usize,
}

impl Bencher {
    /// Times `routine`, running it `sample_size` times (once in `--test`
    /// mode) and recording the total.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warmup to populate caches/lazy statics.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples;
    }
}

/// Prevents the optimizer from discarding a value (re-export of
/// [`std::hint::black_box`] for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_filters_compose() {
        let c = Criterion {
            filters: vec!["gc_sweep".into()],
            test_mode: true,
        };
        assert!(c.selected("qmdd_gc_sweep/off"));
        assert!(!c.selected("qmdd_equivalence/8"));
        let all = Criterion {
            filters: vec![],
            test_mode: false,
        };
        assert!(all.selected("anything/at_all"));
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn bencher_runs_and_counts() {
        let mut c = Criterion {
            filters: vec![],
            test_mode: false,
        };
        let mut ran = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| ran += 1));
            group.finish();
        }
        // 3 timed + 1 warmup.
        assert_eq!(ran, 4);
    }

    #[test]
    fn durations_render_in_sane_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
